"""The per-node home-based LRC protocol engine.

One :class:`DsmEngine` runs on every cluster node.  It owns the node's
object cache, the home entries of objects homed here, the forwarding
pointers of objects that migrated away, and the manager-side state of
locks and barriers homed here.  Thread-facing operations (``read``,
``write``, ``acquire``, ``release``, ``barrier``) are generators driven by
the simulation engine; message handling is plain callbacks.

Protocol summary
----------------

**Fault-in.**  A faulting node sends OBJ_REQUEST to its best-known home.
An obsolete home answers with a redirect directive per the configured
:class:`~repro.dsm.redirection.NotificationMechanism` (each miss is one
*redirection*, the accumulation travels in the request's ``hops`` field
and feeds the adaptive threshold's negative feedback ``R``).  The home
records a remote read, asks the migration policy, and replies with the
object image — plus the home itself when the policy fires (OBJ_REPLY_MIG),
leaving a forwarding pointer behind.

**Diff propagation.**  At release/barrier, each dirty cached object's diff
is shipped to the home, which applies it, bumps the version, records a
remote write (the consecutive-writes chain ``C``), and acks with the new
version.  Release blocks on the acks, so a lock grant (which carries the
write notices) can never overtake the data it announces.

**Home accesses** are trapped once per local synchronization interval,
mirroring §3.3's invalid-on-acquire / read-only-on-release protection of
the home copy; an exclusive home write increments the positive feedback
``E``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, TYPE_CHECKING

import numpy as np

from repro import _kernel
from repro.cluster.message import Message, MsgCategory, NOTICE_ENTRY_BYTES
from repro.cluster.network import Network
from repro.cluster.stats import ClusterStats
from repro.core.coefficient import home_access_coefficient
from repro.core.policies import MigrationPolicy
from repro.core.state import ObjectAccessState
from repro.dsm.barrier import BarrierHandle, BarrierState
from repro.dsm.cache import AccessMode, CacheEntry, CacheIndex
from repro.dsm.home import HomeEntry
from repro.dsm.locks import LockHandle, LockTable
from repro.dsm.pending import KeyedFifo, new_keyed_fifo
from repro.dsm.redirection import (
    NOTIFY_BYTES,
    NotificationMechanism,
    fanout_children,
)
from repro.memory.arena import Arena, new_arena
from repro.memory.diff import Diff, apply_diff, compute_diff
from repro.memory.heap import ObjectHeap
from repro.obs.timers import EpochTimer, SpanTracker

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator

from repro.sim.future import Future

#: Payload bytes of small fixed-size protocol fields.
REQUEST_BYTES = 8
REPLY_EXTRA_BYTES = 8  # version stamp on an object reply
MONITOR_BYTES = 48  # serialized ObjectAccessState on migration
ACK_BYTES = 8
SYNC_BASE_BYTES = 8

#: Abort a fault-in after this many redirections (protocol-bug guard).
MAX_REDIRECTIONS = 1000

#: Retry-discipline lock backoff: base + U(0, jitter) microseconds.
LOCK_RETRY_BASE_US = 150.0
LOCK_RETRY_JITTER_US = 450.0


# ---------------------------------------------------------------------------
# wire payloads
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class ObjRequest:
    oid: int
    requester: int
    request_id: tuple[int, int]
    min_version: int
    hops: int
    for_write: bool
    #: Causal span id of the fault that sent this request (``None`` when
    #: span tracing is off); travels through pending queues unchanged so
    #: a deferred serve still links to its cause.  See repro.obs.spans.
    op_id: int | None = None


@dataclass(slots=True)
class ObjReply:
    oid: int
    request_id: tuple[int, int]
    version: int
    data: np.ndarray
    home: int
    migrated: bool = False
    monitor: ObjectAccessState | None = None
    #: Span id of the migration this reply executes (OBJ_REPLY_MIG only).
    op_id: int | None = None


@dataclass(slots=True)
class RedirectReply:
    oid: int
    request_id: tuple[int, int]
    directive: dict[str, Any]


@dataclass(slots=True)
class ObjBatchRequest:
    """Batched read fault-in — models the GOS's connectivity-based object
    pushing (§5.1): objects co-homed with the faulted one travel in one
    message instead of one round trip each."""

    oids: list[int]
    requester: int
    request_id: tuple[int, int]


@dataclass(slots=True)
class ObjBatchReply:
    request_id: tuple[int, int]
    #: (oid, version, payload copy) for every object served.
    items: list[tuple[int, int, np.ndarray]]
    #: oids not homed here (requester falls back to the singular path).
    missing: list[int]
    home: int


@dataclass(slots=True)
class DiffMsg:
    oid: int
    writer: int
    request_id: tuple[int, int]
    diff: Diff
    hops: int = 0
    #: Causal span id of the diff_flush that shipped this diff.
    op_id: int | None = None


@dataclass(slots=True)
class DiffAck:
    oid: int
    request_id: tuple[int, int]
    version: int
    home: int


@dataclass(slots=True)
class LockAcquireMsg:
    lock_id: int
    requester: int
    request_id: tuple[int, int]
    #: Write notices of the interval the acquirer just closed — diffs are
    #: flushed at *every* synchronization point (acquire and release), so
    #: each synchronized update reaches the home as its own diff.
    notices: dict[int, int] = field(default_factory=dict)


@dataclass(slots=True)
class LockGrantMsg:
    lock_id: int
    request_id: tuple[int, int]
    notices: dict[int, int]
    #: Retry discipline: the lock was held; try again after a backoff.
    busy: bool = False


@dataclass(slots=True)
class LockReleaseMsg:
    lock_id: int
    releaser: int
    notices: dict[int, int]


@dataclass(slots=True)
class BarrierArriveMsg:
    barrier_id: int
    node: int
    round_no: int
    notices: dict[int, int]


@dataclass(slots=True)
class BarrierReleaseMsg:
    barrier_id: int
    round_no: int
    notices: dict[int, int]
    new_homes: dict[int, int] = field(default_factory=dict)
    #: Multicast relay fields (release_fanout only; PROTOCOL.md §15).
    #: ``fanout == 0`` is the legacy direct burst from the manager; with
    #: ``fanout == k`` each receiver re-forwards along the k-ary tree of
    #: :func:`~repro.dsm.redirection.fanout_children` rooted at ``root``.
    #: One immutable message object is shared across the whole fan-out.
    root: int = -1
    fanout: int = 0


@dataclass(slots=True)
class MigrateOrderMsg:
    oid: int
    new_home: int


@dataclass(slots=True)
class HomeTransferMsg:
    oid: int
    version: int
    data: np.ndarray
    monitor: ObjectAccessState
    #: Span id of the barrier-ordered migration this transfer executes.
    op_id: int | None = None


@dataclass(slots=True)
class ShipRequest:
    """Synchronized method shipping (§5.1's GOS optimization): execute a
    mutator at the object's home instead of faulting the object over."""

    oid: int
    requester: int
    request_id: tuple[int, int]
    fn: Any  # callable(payload) -> result, runs at the home
    compute_us: float
    args_bytes: int
    hops: int = 0
    #: Causal span id of the ship operation that sent this request.
    op_id: int | None = None


@dataclass(slots=True)
class ShipReply:
    oid: int
    request_id: tuple[int, int]
    version: int
    home: int
    result: Any = None
    #: Home migrated instead of executing: the requester must run fn
    #: locally after installing the home.
    migrated: bool = False
    data: np.ndarray | None = None
    monitor: ObjectAccessState | None = None
    #: Span id of the migration this reply executes (migrated=True only).
    op_id: int | None = None


@dataclass(slots=True)
class HomeQueryMsg:
    oid: int
    requester: int
    request_id: tuple[int, int]


@dataclass(slots=True)
class HomeAnswerMsg:
    oid: int
    request_id: tuple[int, int]
    home: int


# ---------------------------------------------------------------------------
# the engine
# ---------------------------------------------------------------------------


class DsmEngine:
    """Home-based LRC protocol instance on one node."""

    def __init__(
        self,
        node_id: int,
        sim: "Simulator",
        network: Network,
        heap: ObjectHeap,
        stats: ClusterStats,
        policy: MigrationPolicy,
        mechanism: NotificationMechanism,
        tracer=None,
        lock_discipline: str = "fifo",
        seed: int = 0,
        metrics=None,
        logger=None,
        arenas: "list[Arena] | None" = None,
        gc_enabled: bool = True,
        spans=None,
        release_fanout: int | None = None,
    ):
        if lock_discipline not in ("fifo", "retry"):
            raise ValueError(
                f"lock_discipline must be 'fifo' or 'retry', got "
                f"{lock_discipline!r}"
            )
        if release_fanout is not None and release_fanout < 2:
            raise ValueError(
                f"release_fanout must be >= 2, got {release_fanout}"
            )
        mechanism.validate(network.nnodes)
        self.node_id = node_id
        self.sim = sim
        self.network = network
        self.heap = heap
        self.stats = stats
        self.policy = policy
        self.mechanism = mechanism
        #: Barrier-release multicast fan-out (PROTOCOL.md §15): ``None``
        #: keeps the legacy direct N-1 burst from the barrier manager;
        #: ``k`` relays releases through a k-ary tree instead, bounding
        #: any single NIC's injection run at k messages.
        self.release_fanout = release_fanout
        self.tracer = tracer
        self.lock_discipline = lock_discipline
        #: Shared per-node arena list (index = node id).  Reply payload
        #: copies are carved from the *receiver's* arena — modelling the
        #: receive-side buffer a real transport would fill — so that every
        #: payload living on a node came from that node's arena and the
        #: free/reuse cycle closes locally.  Standalone engines (unit
        #: tests) get a private arena and skip the cross-node discipline.
        self.arenas = arenas
        self.arena: Arena = (
            arenas[node_id] if arenas is not None else new_arena()
        )
        self.gc_enabled = gc_enabled
        #: Barrier-epoch GC tallies (observability only; never in stats).
        self.gc_cache_drops = 0
        self.gc_notice_prunes = 0
        import random

        self._rng = random.Random(10_007 * (node_id + 1) + seed)

        # -- telemetry (optional; every site guards on a cached handle so
        # the disabled path costs one `is not None` check) ------------------
        self.metrics = metrics
        self.logger = logger
        if metrics is not None:
            self._m_fault_us = metrics.histogram(
                "dsm_fault_in_us", node=node_id
            )
            self._m_redirect_hops = metrics.histogram(
                "dsm_redirect_chain_length",
                buckets=(0, 1, 2, 4, 8, 16, 32, 64),
                node=node_id,
            )
            self._m_diff_bytes = metrics.histogram(
                "dsm_diff_bytes", node=node_id
            )
            self._m_migrations = metrics.counter(
                "dsm_migrations_total", node=node_id
            )
            self._m_lock_epoch_us = metrics.histogram(
                "dsm_lock_epoch_us", node=node_id
            )
            self._m_barrier_interval_us = metrics.histogram(
                "dsm_barrier_interval_us", node=node_id
            )
            self._lock_epochs: SpanTracker | None = SpanTracker()
            self._barrier_epochs: dict[int, EpochTimer] = {}
        else:
            self._m_fault_us = None
            self._m_redirect_hops = None
            self._m_diff_bytes = None
            self._m_migrations = None
            self._m_lock_epoch_us = None
            self._m_barrier_interval_us = None
            self._lock_epochs = None
            self._barrier_epochs = {}
        self._log_debug = logger is not None and logger.enabled_for("debug")
        self._log_info = logger is not None and logger.enabled_for("info")

        # -- conformance-stream guards (cached so the hot paths pay one
        # attribute read when tracing is off; see PROTOCOL.md §13) ---------
        self._tr_twin_create = tracer is not None and tracer.wants("twin_create")
        self._tr_twin_free = tracer is not None and tracer.wants("twin_free")
        self._tr_diff_send = tracer is not None and tracer.wants("diff_send")
        self._tr_diff_apply = tracer is not None and tracer.wants("diff_apply")
        self._tr_home_install = (
            tracer is not None and tracer.wants("home_install")
        )
        self._tr_ship = tracer is not None and tracer.wants("ship")

        # -- causal span layer (repro.obs.spans): one SpanTracer is shared
        # by every engine of the run; the cached handle is None unless the
        # tracer captures both span kinds, so disabled runs pay a single
        # `is not None` per operation.  Span sites never touch stats,
        # message sizes or simulated time — the determinism digest is
        # bit-identical with spans on or off.
        self._sp = (
            spans if (spans is not None and spans.enabled) else None
        )

        self.cache = CacheIndex()
        self.homes: dict[int, HomeEntry] = {}
        self.forwards: dict[int, int] = {}
        self.home_hint: dict[int, int] = {}
        self.required_version: dict[int, int] = {}
        self.dirty: set[int] = set()
        self.home_dirty: set[int] = set()
        self.carry_notices: dict[int, int] = {}
        self.interval: int = 0

        self.lock_table = LockTable()
        self.barriers: dict[int, BarrierState] = {}
        self.manager_home_map: dict[int, int] = {}

        self._reply_waiters: dict[tuple[int, int], Future] = {}
        self._lock_waiters: dict[tuple[int, tuple[int, int]], Future] = {}
        self._barrier_waiters: dict[tuple[int, int], list[Future]] = {}
        self.pending_foreign: KeyedFifo = new_keyed_fifo()
        self._pending_diffs: KeyedFifo = new_keyed_fifo()
        #: Local threads waiting for an inbound home transfer (a barrier
        #: release can announce this node as the new home before the
        #: transfer message arrives).
        self._local_home_waits: dict[int, list[Future]] = {}
        #: Fault coalescing: one outstanding fault-in per object per node;
        #: co-located threads piggyback on it.
        self._inflight: dict[int, Future] = {}
        self._req_counter = 0

        #: Resolved kernel module (or None), cached once: the hot paths
        #: branch on it per call and must not pay re-resolution.
        self._kernel = kernel_module = _kernel.kernel()
        #: Hot-path Future class: the C twin when compiled (request/reply
        #: round trips create tens of thousands per run), else the
        #: pure-Python reference.  Interchangeable by contract.  Labels on
        #: these futures are static kind strings — per-call f-strings cost
        #: more than the futures themselves at this volume.
        self._Future = (
            kernel_module.Future if kernel_module is not None else Future
        )
        self._msg_dispatch = self._build_dispatch()
        # Compiled backend: the per-message dispatch (category lookup +
        # handler call) runs in C.  The Dispatcher reads the *same* dict
        # object, so handler-table semantics are identical; on_message
        # stays available either way.
        if kernel_module is not None:
            handler = kernel_module.Dispatcher(self._msg_dispatch)
        else:
            handler = self.on_message
        network.nodes[node_id].install_handler(handler)
        # Protocol fast paths (PR 8).  Compiled backend: the local-hit
        # read/write bodies run in C against the flat cache index, with
        # cold paths (trap bookkeeping, twin creation, tracing) falling
        # back to the bound Python methods captured at construction.
        if kernel_module is not None:
            self._local_access = kernel_module.LocalAccess(
                self,
                AccessMode.INVALID,
                AccessMode.WRITE,
                not self._tr_twin_create,
            )
            self.try_read_local = self._local_access.try_read
            self.try_write_local = self._local_access.try_write
        # Both backends register for fast (batched, Message-free)
        # delivery so python and compiled runs keep identical event
        # structure; the network activates it once every node is in.
        network.register_fast_dispatch(
            node_id, self._msg_dispatch, self._bind_fast_sender
        )

    # -- helpers ------------------------------------------------------------

    def _next_request_id(self) -> tuple[int, int]:
        self._req_counter += 1
        return (self.node_id, self._req_counter)

    def install_initial_home(self, oid: int) -> None:
        """Materialise the home entry for an object initially homed here."""
        obj = self.heap.get(oid)
        self.homes[oid] = HomeEntry(
            payload=obj.new_payload(self.arena),
            version=0,
            state=ObjectAccessState(
                oid=oid,
                object_bytes=obj.size_bytes,
                threshold_base=self.policy.initial_base(),
            ),
        )
        if self._tr_home_install:
            self.tracer.record(
                "home_install",
                self.sim.now,
                oid,
                self.node_id,
                origin="initial",
                version=0,
            )

    def best_home_hint(self, oid: int) -> int:
        """This node's best guess at ``oid``'s current home (initial-home
        fallback; updated by replies, acks, redirects, broadcasts)."""
        return self.home_hint.get(oid, self.heap.initial_home(oid))

    def alpha(self, oid: int, state: ObjectAccessState) -> float:
        """The home access coefficient for this object right now."""
        obj = self.heap.get(oid)
        return home_access_coefficient(
            obj.size_bytes,
            state.diff_bytes_avg,
            self.network.comm_model.half_peak_bytes,
        )

    def _send(
        self, dst: int, category: MsgCategory, size_bytes: int, payload: Any
    ) -> None:
        self.network.send(self.node_id, dst, category, size_bytes, payload)

    def _bind_fast_sender(self, sender: Any) -> None:
        """Install the network's fast-path send callable as this
        engine's ``_send`` (same ``(dst, category, size_bytes, payload)``
        signature; the node id is pre-bound)."""
        self._send = sender

    def _dst_arena(self, node: int) -> Arena:
        """The arena a payload copy destined for ``node`` is carved from.

        Models the receive buffer the destination allocates: the copy's
        lifetime is entirely on the receiving node, so its storage should
        come from — and eventually return to — that node's pool.
        """
        if self.arenas is not None:
            return self.arenas[node]
        return self.arena

    def _notice_size(self, notices: dict[int, int]) -> int:
        return SYNC_BASE_BYTES + NOTICE_ENTRY_BYTES * len(notices)

    # ------------------------------------------------------------------
    # thread-facing operations (generators)
    # ------------------------------------------------------------------

    def try_read_local(self, oid: int) -> np.ndarray | None:
        """Readable payload if no communication is needed, else ``None``.

        Identical side effects to the local-hit branches of :meth:`read`
        (home-read trap), but as a plain call: the caller can skip
        generator construction entirely on the overwhelmingly common
        local hit.  Payloads are always arrays, so ``None`` is unambiguous.
        """
        entry = self.homes.get(oid)
        if entry is not None:
            entry.trap_home_read(self.interval)
            return entry.payload
        cached = self.cache.get(oid)
        if cached is not None and cached.readable():
            return cached.payload
        return None

    def try_write_local(self, oid: int) -> np.ndarray | None:
        """Writable payload if no communication is needed, else ``None``.

        Mirrors the local-hit branches of :meth:`write` (home-write trap,
        twin creation, dirty tracking) without the generator machinery.
        """
        entry = self.homes.get(oid)
        if entry is not None:
            trapped, exclusive = entry.trap_home_write(self.interval)
            if trapped:
                self.stats.incr("home_write")
                if exclusive:
                    self.stats.incr("exclusive_home_write")
            self.home_dirty.add(oid)
            return entry.payload
        cached = self.cache.get(oid)
        if cached is not None and cached.readable():
            if self._tr_twin_create and cached.twin is None:
                self.tracer.record(
                    "twin_create",
                    self.sim.now,
                    oid,
                    self.node_id,
                    interval=self.interval,
                )
            cached.upgrade_to_write(self.arena)
            self.dirty.add(oid)
            return cached.payload
        return None

    def read(self, oid: int) -> Generator[Any, Any, np.ndarray]:
        """Ensure a readable copy of ``oid``; return its payload array."""
        payload = self.try_read_local(oid)
        if payload is not None:
            return payload
        payload = yield from self._fault_in(oid, for_write=False)
        return payload

    def write(self, oid: int) -> Generator[Any, Any, np.ndarray]:
        """Ensure a writable copy of ``oid``; return its payload array.

        On a cached copy this makes the twin (first write of the interval);
        on the home copy it traps the home write for the monitor.
        """
        payload = self.try_write_local(oid)
        if payload is not None:
            return payload
        yield from self._fault_in(oid, for_write=True)
        # migration may have made us the home; re-dispatch
        payload = yield from self.write(oid)
        return payload

    def read_many(self, oids: list[int]) -> Generator[Any, Any, None]:
        """Batched read fault-in: one request per (presumed) home node.

        Ensures a readable copy of every object; objects already valid
        locally cost nothing.  Objects the presumed home no longer hosts
        fall back to the singular redirect-following path.  Models the
        paper's connectivity-based object pushing optimization.
        """
        by_target: dict[int, list[int]] = {}
        leftover_local: list[int] = []
        for oid in oids:
            if oid in self.homes:
                continue
            cached = self.cache.get(oid)
            if cached is not None and cached.readable():
                continue
            if oid in self._inflight:
                # a co-located thread is already fetching it
                leftover_local.append(oid)
                continue
            target = self.best_home_hint(oid)
            if target == self.node_id:
                if oid not in self.forwards:
                    # inbound transfer in flight: take the singular path,
                    # which waits for it
                    leftover_local.append(oid)
                    continue
                target = self.forwards[oid]
                self.home_hint[oid] = target
            by_target.setdefault(target, []).append(oid)
        pending: list[Future] = []
        for target, group in sorted(by_target.items()):
            request_id = self._next_request_id()
            fut = self._Future(label="batchreq")
            self._reply_waiters[request_id] = fut
            self._send(
                target,
                MsgCategory.OBJ_REQUEST,
                REQUEST_BYTES + 8 * len(group),
                ObjBatchRequest(
                    oids=group, requester=self.node_id, request_id=request_id
                ),
            )
            pending.append(fut)
        leftovers: list[int] = list(leftover_local)
        for fut in pending:
            reply: ObjBatchReply = yield fut
            for oid, version, data in reply.items:
                if version < self.required_version.get(oid, 0):
                    leftovers.append(oid)  # stale (rare race): refetch singly
                    self.arena.free(data)
                    continue
                self.home_hint[oid] = reply.home
                self._retire_cached(oid)
                self.cache[oid] = CacheEntry(
                    payload=data, version=version, mode=AccessMode.READ
                )
            leftovers.extend(reply.missing)
        for oid in leftovers:
            if oid in self.homes:
                continue
            cached = self.cache.get(oid)
            if cached is not None and cached.readable():
                continue
            yield from self._fault_in(oid, for_write=False)

    def _handle_batch_request(self, request: ObjBatchRequest) -> None:
        items: list[tuple[int, int, np.ndarray]] = []
        missing: list[int] = []
        for oid in request.oids:
            entry = self.homes.get(oid)
            if entry is None:
                missing.append(oid)
                continue
            entry.state.record_remote_read(request.requester)
            self.stats.incr("remote_read")
            self.stats.incr("obj")
            items.append(
                (
                    oid,
                    entry.version,
                    self._dst_arena(request.requester).take_copy(entry.payload),
                )
            )
        size = REQUEST_BYTES + sum(
            self.heap.get(oid).size_bytes + REPLY_EXTRA_BYTES
            for oid, _v, _d in items
        )
        self._send(
            request.requester,
            MsgCategory.OBJ_REPLY,
            size,
            ObjBatchReply(
                request_id=request.request_id,
                items=items,
                missing=missing,
                home=self.node_id,
            ),
        )

    def ship(
        self,
        oid: int,
        fn: Any,
        compute_us: float = 0.0,
        args_bytes: int = 8,
    ) -> Generator[Any, Any, Any]:
        """Synchronized method shipping: run ``fn(payload)`` at the home.

        The caller must hold the lock guarding the object (as a shipped
        ``synchronized`` method would).  At the home, the execution counts
        as a remote write by the requester — consecutive ships from one
        node build the same ``C`` chain diffs do, so the migration policy
        can still decide to move the home to a persistent shipper, in
        which case the reply carries the home instead and ``fn`` runs
        locally.  Returns ``fn``'s result.
        """
        entry = self.homes.get(oid)
        if entry is not None:
            trapped, exclusive = entry.trap_home_write(self.interval)
            if trapped:
                self.stats.incr("home_write")
                if exclusive:
                    self.stats.incr("exclusive_home_write")
            self.home_dirty.add(oid)
            if compute_us > 0:
                from repro.sim.process import Delay

                yield Delay(compute_us)
            return fn(entry.payload)
        sp = self._sp
        op = None
        if sp is not None:
            op = sp.open("ship", self.sim.now, oid, self.node_id)
        hops = 0
        for _attempt in range(MAX_REDIRECTIONS):
            target = self.best_home_hint(oid)
            if target == self.node_id:
                if oid in self.homes:
                    # recursion takes the local-home branch: no new span
                    result = yield from self.ship(oid, fn, compute_us, args_bytes)
                    if sp is not None:
                        sp.close(op, "ship", self.sim.now, oid, self.node_id)
                    return result
                if oid in self.forwards:
                    self.home_hint[oid] = self.forwards[oid]
                    continue
                fut = self._Future(label="inbound-home")
                self._local_home_waits.setdefault(oid, []).append(fut)
                yield fut
                continue
            request_id = self._next_request_id()
            fut = self._Future(label="ship")
            self._reply_waiters[request_id] = fut
            sent_at = self.sim.now
            self._send(
                target,
                MsgCategory.SHIP_REQUEST,
                REQUEST_BYTES + args_bytes,
                ShipRequest(
                    oid=oid,
                    requester=self.node_id,
                    request_id=request_id,
                    fn=fn,
                    compute_us=compute_us,
                    args_bytes=args_bytes,
                    hops=hops,
                    op_id=op,
                ),
            )
            reply = yield fut
            if isinstance(reply, RedirectReply):
                hops += 1
                if sp is not None:
                    sp.completed(
                        "redirect_hop",
                        sent_at,
                        self.sim.now,
                        oid,
                        self.node_id,
                        parent=op,
                        target=target,
                    )
                directive = reply.directive
                if directive["kind"] == "redirect":
                    self.home_hint[oid] = directive["target"]
                else:
                    home = yield from self._query_manager(
                        oid, directive["manager"]
                    )
                    self.home_hint[oid] = home
                continue
            if reply.migrated:
                # the policy moved the home to us; install it and run
                # fn locally as a home write
                self._free_dead_entry(self.cache.pop(oid, None))
                self.forwards.pop(oid, None)
                self.homes[oid] = HomeEntry(
                    payload=reply.data,
                    version=reply.version,
                    state=reply.monitor,
                )
                self.home_hint[oid] = self.node_id
                if self._tr_home_install:
                    self.tracer.record(
                        "home_install",
                        self.sim.now,
                        oid,
                        self.node_id,
                        origin="reply-mig",
                        version=reply.version,
                    )
                if sp is not None and reply.op_id is not None:
                    sp.close(
                        reply.op_id,
                        "migration",
                        self.sim.now,
                        oid,
                        self.node_id,
                        version=reply.version,
                    )
                self._serve_pending_foreign(oid)
                self._serve_pending_diffs(oid)
                for waiter in self._local_home_waits.pop(oid, []):
                    waiter.resolve(None)
                result = yield from self.ship(oid, fn, compute_us, args_bytes)
                if sp is not None:
                    sp.close(op, "ship", self.sim.now, oid, self.node_id)
                return result
            self.home_hint[oid] = reply.home
            if self.carry_notices.get(oid, 0) < reply.version:
                self.carry_notices[oid] = reply.version
            cached = self.cache.get(oid)
            if cached is not None and cached.mode is AccessMode.READ:
                cached.invalidate()
            if sp is not None:
                sp.close(op, "ship", self.sim.now, oid, self.node_id)
            return reply.result
        raise RuntimeError(
            f"shipping to oid {oid} exceeded {MAX_REDIRECTIONS} redirections"
        )

    def _handle_ship(self, request: ShipRequest) -> None:
        entry = self.homes.get(request.oid)
        if entry is None:
            if request.oid in self.forwards:
                self.stats.incr("redir")
                if self.tracer is not None and self.tracer.wants("redirect"):
                    self.tracer.record(
                        "redirect",
                        self.sim.now,
                        request.oid,
                        self.node_id,
                        obsolete_home=self.node_id,
                        requester=request.requester,
                    )
                directive = self.mechanism.miss_directive(self, request.oid)
                self._send(
                    request.requester,
                    MsgCategory.REDIRECT,
                    REQUEST_BYTES,
                    RedirectReply(
                        oid=request.oid,
                        request_id=request.request_id,
                        directive=directive,
                    ),
                )
            else:
                self.stats.incr("deferred_request")
                self.pending_foreign.add(request.oid, request)
            return
        state = entry.state
        state.record_redirections(request.hops)
        alpha = self.alpha(request.oid, state)
        obj = self.heap.get(request.oid)
        migrate = self.policy.should_migrate(
            state, request.requester, alpha, for_write=True
        )
        self._trace_decision(
            request.oid, state, request.requester, alpha, migrate
        )
        if migrate:
            self.policy.on_migrated(state, alpha)
            self._trace_migration(request.oid, request.requester, state)
            mig_op = None
            if self._sp is not None:
                mig_op = self._sp.open(
                    "migration",
                    self.sim.now,
                    request.oid,
                    self.node_id,
                    parent=request.op_id,
                    target=request.requester,
                )
            self.stats.incr("mig")
            self.stats.incr("migration")
            self._close_dirty_home_interval(request.oid, entry)
            self._send(
                request.requester,
                MsgCategory.SHIP_REPLY,
                obj.size_bytes + REPLY_EXTRA_BYTES + MONITOR_BYTES,
                ShipReply(
                    oid=request.oid,
                    request_id=request.request_id,
                    version=entry.version,
                    home=request.requester,
                    migrated=True,
                    data=self._dst_arena(request.requester).take_copy(
                        entry.payload
                    ),
                    monitor=state,
                    op_id=mig_op,
                ),
            )
            self._demote_home(request.oid, entry, request.requester)
            for pending in entry.pending.drain():
                self._handle_obj_request(pending)
            return
        # execute here; the execution is a remote write by the requester
        self.stats.incr("ship")
        self.stats.incr("remote_write")
        state.record_remote_write(request.requester, request.args_bytes)
        if self._tr_ship:
            self.tracer.record(
                "ship",
                self.sim.now,
                request.oid,
                self.node_id,
                home=self.node_id,
                requester=request.requester,
            )
        result = request.fn(entry.payload)
        entry.version += 1
        self._recheck_pending(request.oid)
        reply = ShipReply(
            oid=request.oid,
            request_id=request.request_id,
            version=entry.version,
            home=self.node_id,
            result=result,
        )
        if request.compute_us > 0:
            self.sim.schedule(
                request.compute_us,
                self._send,
                request.requester,
                MsgCategory.SHIP_REPLY,
                REQUEST_BYTES + request.args_bytes,
                reply,
            )
        else:
            self._send(
                request.requester,
                MsgCategory.SHIP_REPLY,
                REQUEST_BYTES + request.args_bytes,
                reply,
            )

    def _fault_in(
        self, oid: int, for_write: bool
    ) -> Generator[Any, Any, np.ndarray]:
        """Fetch a valid copy from the home, following redirections.

        Concurrent faults by co-located threads coalesce: only one
        request per object is outstanding per node, and the piggybacking
        threads re-check local state once it completes.
        """
        while oid in self._inflight:
            yield self._inflight[oid]
            entry = self.homes.get(oid)
            if entry is not None:
                return entry.payload
            cached = self.cache.get(oid)
            if cached is not None and cached.readable():
                return cached.payload
        marker = self._Future(label="inflight")
        self._inflight[oid] = marker
        sp = self._sp
        if sp is not None:
            op_kind = "write_miss" if for_write else "read_miss"
            op = sp.open(op_kind, self.sim.now, oid, self.node_id)
        else:
            op_kind = None
            op = None
        try:
            if self._m_fault_us is not None:
                started = self.sim.now
                payload = yield from self._fault_in_primary(oid, for_write, op)
                self._m_fault_us.observe(self.sim.now - started)
            else:
                payload = yield from self._fault_in_primary(oid, for_write, op)
            if sp is not None:
                sp.close(op, op_kind, self.sim.now, oid, self.node_id)
            return payload
        finally:
            del self._inflight[oid]
            marker.resolve(None)

    def _fault_in_primary(
        self, oid: int, for_write: bool, op: int | None = None
    ) -> Generator[Any, Any, np.ndarray]:
        min_version = self.required_version.get(oid, 0)
        sp = self._sp
        hops = 0
        for _attempt in range(MAX_REDIRECTIONS):
            target = self.best_home_hint(oid)
            if target == self.node_id:
                if oid in self.homes:
                    return self.homes[oid].payload
                if oid in self.forwards:
                    # stale self-hint after we migrated the home away
                    self.home_hint[oid] = self.forwards[oid]
                    continue
                # we were announced as the new home but the transfer is
                # still in flight: wait for it
                fut = self._Future(label="inbound-home")
                self._local_home_waits.setdefault(oid, []).append(fut)
                yield fut
                continue
            request_id = self._next_request_id()
            fut = self._Future(label="objreq")
            self._reply_waiters[request_id] = fut
            sent_at = self.sim.now
            self._send(
                target,
                MsgCategory.OBJ_REQUEST,
                REQUEST_BYTES,
                ObjRequest(
                    oid=oid,
                    requester=self.node_id,
                    request_id=request_id,
                    min_version=min_version,
                    hops=hops,
                    for_write=for_write,
                    op_id=op,
                ),
            )
            reply = yield fut
            if isinstance(reply, ObjReply):
                return self._install_reply(oid, reply)
            # redirected: one more accumulated redirection
            hops += 1
            if sp is not None:
                # the hop's extent is only known now; the open carries the
                # earlier send timestamp (consumers sort by time)
                sp.completed(
                    "redirect_hop",
                    sent_at,
                    self.sim.now,
                    oid,
                    self.node_id,
                    parent=op,
                    target=target,
                )
            directive = reply.directive
            if directive["kind"] == "redirect":
                self.home_hint[oid] = directive["target"]
            elif directive["kind"] == "manager":
                home = yield from self._query_manager(oid, directive["manager"])
                self.home_hint[oid] = home
            else:  # pragma: no cover - defensive
                raise RuntimeError(f"unknown miss directive {directive!r}")
        raise RuntimeError(
            f"fault-in of oid {oid} at node {self.node_id} exceeded "
            f"{MAX_REDIRECTIONS} redirections"
        )

    def _query_manager(
        self, oid: int, manager: int
    ) -> Generator[Any, Any, int]:
        if manager == self.node_id:
            # we are the manager: answer from the local map
            return self.manager_home_map.get(oid, self.heap.initial_home(oid))
        request_id = self._next_request_id()
        fut = self._Future(label="homequery")
        self._reply_waiters[request_id] = fut
        self._send(
            manager,
            MsgCategory.HOME_QUERY,
            REQUEST_BYTES,
            HomeQueryMsg(oid=oid, requester=self.node_id, request_id=request_id),
        )
        answer: HomeAnswerMsg = yield fut
        return answer.home

    def _install_reply(self, oid: int, reply: ObjReply) -> np.ndarray:
        self.home_hint[oid] = reply.home
        if reply.migrated:
            assert reply.monitor is not None
            self._free_dead_entry(self.cache.pop(oid, None))
            self.forwards.pop(oid, None)  # we are home again: drop stale pointer
            self.homes[oid] = HomeEntry(
                payload=reply.data, version=reply.version, state=reply.monitor
            )
            self.home_hint[oid] = self.node_id
            if self._tr_home_install:
                self.tracer.record(
                    "home_install",
                    self.sim.now,
                    oid,
                    self.node_id,
                    origin="reply-mig",
                    version=reply.version,
                )
            if self._sp is not None and reply.op_id is not None:
                self._sp.close(
                    reply.op_id,
                    "migration",
                    self.sim.now,
                    oid,
                    self.node_id,
                    version=reply.version,
                )
            self._serve_pending_foreign(oid)
            self._serve_pending_diffs(oid)
            return self.homes[oid].payload
        required = self.required_version.get(oid, 0)
        if reply.version < required:  # pragma: no cover - protocol invariant
            raise RuntimeError(
                f"home replied version {reply.version} < required {required} "
                f"for oid {oid}"
            )
        self._retire_cached(oid)
        self.cache[oid] = CacheEntry(
            payload=reply.data, version=reply.version, mode=AccessMode.READ
        )
        return reply.data

    def _retire_cached(self, oid: int) -> None:
        """Recycle the payload of an about-to-be-replaced cache entry."""
        self._free_dead_entry(self.cache.get(oid))

    def _free_dead_entry(self, entry: CacheEntry | None) -> None:
        """Pool a dropped entry's payload iff it is provably dead.

        Only ``INVALID`` twinless copies qualify: application threads
        re-fault after every synchronization point, so nothing can still
        reach an invalid copy's buffer (see ``docs/PROTOCOL.md`` §12).
        READ/WRITE copies are never freed here — a local thread may hold
        the payload reference within the current interval.
        """
        if (
            entry is not None
            and entry.mode is AccessMode.INVALID
            and entry.twin is None
        ):
            self.arena.free(entry.payload)

    # -- diff flushing --------------------------------------------------

    def flush_diffs(
        self, parent_op: int | None = None
    ) -> Generator[Any, Any, dict[int, int]]:
        """Ship diffs of all dirty objects to their homes; wait for acks.

        Returns the write notices of this interval (oid -> new version),
        covering cached-copy diffs, home-copy writes, and any carried
        notices from migrations that closed a dirty home interval.

        ``parent_op`` is the causal span of the synchronization operation
        this flush belongs to (lock acquire/release or barrier wait); each
        shipped diff opens a ``diff_flush`` child span closed at its ack.
        """
        notices: dict[int, int] = {}
        waits: list[tuple[int, CacheEntry, Future, int | None]] = []
        arena = self.arena
        sp = self._sp
        for oid in sorted(self.dirty):
            cached = self.cache.get(oid)
            if cached is None or cached.twin is None:
                continue
            diff = compute_diff(
                oid,
                cached.twin,
                cached.payload,
                scratch=arena.bool_scratch(cached.payload.size),
            )
            if diff is None:
                if self._tr_twin_free:
                    self.tracer.record(
                        "twin_free",
                        self.sim.now,
                        oid,
                        self.node_id,
                        interval=self.interval,
                    )
                cached.downgrade_clean(arena)
                continue
            request_id = self._next_request_id()
            fut = self._Future(label="diffack")
            self._reply_waiters[request_id] = fut
            target = self.best_home_hint(oid)
            if sp is not None:
                d_op = sp.open(
                    "diff_flush",
                    self.sim.now,
                    oid,
                    self.node_id,
                    parent=parent_op,
                    target=target,
                    size_bytes=diff.size_bytes,
                )
            else:
                d_op = None
            if self._tr_diff_send:
                self.tracer.record(
                    "diff_send",
                    self.sim.now,
                    oid,
                    self.node_id,
                    target=target,
                    size_bytes=diff.size_bytes,
                    base_version=cached.version,
                )
            self._send(
                target,
                MsgCategory.DIFF,
                diff.size_bytes + REQUEST_BYTES,
                DiffMsg(
                    oid=oid,
                    writer=self.node_id,
                    request_id=request_id,
                    diff=diff,
                    op_id=d_op,
                ),
            )
            # The write interval ends at the *send*: the diff captured its
            # image, and the payload now equals what the home will hold
            # once the diff lands.  Free the twin here so a co-located
            # thread's write before the ack opens a fresh interval with a
            # fresh twin against that post-diff image — keeping the old
            # twin until the ack mis-bases the next diff and can silently
            # drop a write that restores the old twin's value.
            if self._tr_twin_free:
                self.tracer.record(
                    "twin_free",
                    self.sim.now,
                    oid,
                    self.node_id,
                    interval=self.interval,
                )
            arena.free(cached.twin)
            cached.twin = None
            cached.mode = AccessMode.READ
            waits.append((oid, cached, fut, d_op))
        self.dirty.clear()
        for oid, cached, fut, d_op in waits:
            ack: DiffAck = yield fut
            self.home_hint[oid] = ack.home
            if cached.twin is not None:
                # a co-located thread already opened the next write
                # interval on the post-diff image: just advance the version
                cached.version = ack.version
            else:
                cached.downgrade_after_flush(ack.version, arena)
            notices[oid] = ack.version
            if d_op is not None:
                sp.close(
                    d_op,
                    "diff_flush",
                    self.sim.now,
                    oid,
                    self.node_id,
                    version=ack.version,
                )
        for oid in sorted(self.home_dirty):
            entry = self.homes.get(oid)
            if entry is None:
                continue  # migrated away mid-interval; notice already carried
            entry.version += 1
            notices[oid] = entry.version
            self._recheck_pending(oid)
        self.home_dirty.clear()
        if self.carry_notices:
            for oid, version in self.carry_notices.items():
                if notices.get(oid, 0) < version:
                    notices[oid] = version
            self.carry_notices.clear()
        return notices

    def apply_notices(self, notices: dict[int, int]) -> None:
        """Record incoming write notices (version floor for fault-ins).

        Hot path: barrier releases carry O(#written objects) notices per
        round.  Cache invalidation is *not* done here — both call sites
        (acquire, barrier) follow with :meth:`invalidate_all_cached`
        (Java consistency), which subsumes per-notice invalidation.
        """
        kernel_module = self._kernel
        if kernel_module is not None:
            kernel_module.merge_notices(self.required_version, notices)
            return
        required = self.required_version
        for oid, version in notices.items():
            if version > required.get(oid, 0):
                required[oid] = version

    def invalidate_all_cached(self) -> None:
        """Java-consistency cache flush at a synchronization point.

        The paper's GOS follows the (pre-JSR-133) Java memory model, under
        which acquiring a monitor invalidates the thread's working copies
        of shared objects wholesale — *every* cached (non-home) copy is
        re-faulted after a synchronization, while home copies stay valid.
        This asymmetry is precisely what home migration exploits, and it
        is what makes the per-access fault stream of Figure 5 come out:
        each synchronized update by a non-home writer re-faults the object.

        Dirty WRITE copies are spared: their diffs have not been flushed
        yet (LRC multiple-writer semantics keep them coherent via twins).

        Hot at scale — every node sweeps its whole cache at every
        synchronization point — so the compiled backend runs the sweep
        in C (same identity compare, same attribute writes).
        """
        kernel_module = self._kernel
        if kernel_module is not None:
            kernel_module.cache_invalidate_read(
                self.cache, AccessMode.READ, AccessMode.INVALID
            )
            return
        for cached in self.cache.values():
            if cached.mode is AccessMode.READ:
                cached.mode = AccessMode.INVALID

    def collect_garbage(self, released: dict[int, int]) -> None:
        """Barrier-epoch memory GC (``docs/PROTOCOL.md`` §12).

        Runs after ``apply_notices``/``invalidate_all_cached`` of a
        barrier release.  Two reclamations, both behaviour-free:

        * **Invalid cached copies** are dropped and their payload
          buffers pooled.  Every later access re-faults anyway (Java
          consistency invalidated them wholesale), and
          ``_install_home_transfer`` falls back to the transferred image
          when no cached array exists, so nothing observes the missing
          entry.  Without this, every node's cache accumulates one dead
          payload per object it ever touched.
        * **Write-notice floors** (``required_version``) are pruned up
          to the release's version horizon: home versions are monotone
          and travel with migration, and a notice is only emitted after
          its home reached that version — so a floor at or below the
          version this release announced (or whose object is homed
          here, where the floor is moot) can never defer a future
          request.  The floor map stops growing with run history.

        Deliberately touches no :class:`ClusterStats` counters, sends
        no messages, and consumes no simulated time: results and the
        determinism digest are bit-identical with GC on or off.
        """
        cache = self.cache
        required = self.required_version
        # The release's floors are no longer merged into
        # required_version (see barrier(): merge-then-prune was a
        # no-op), so reconstruct the legacy pre-GC accounting exactly:
        # the floors this epoch *would* have held are the own floors
        # plus the release's not-already-present ones, and every elided
        # floor counts as pruned (it was reclaimed by never being
        # retained).  Both counters stay bit-identical to the
        # merge-then-prune implementation.
        elided = len(released)
        if required:
            elided -= sum(1 for oid in required if oid in released)
        # pre-GC footprint peaks: the bounded-steady-state evidence
        self.stats.record_peak("cache_entries", len(cache))
        self.stats.record_peak("notice_floors", len(required) + elided)
        kernel_module = self._kernel
        if cache:
            if kernel_module is not None:
                self.gc_cache_drops += kernel_module.cache_sweep_invalid(
                    cache, AccessMode.INVALID, self.arena.free
                )
            else:
                dead = [
                    oid
                    for oid, entry in cache.items()
                    if entry.mode is AccessMode.INVALID and entry.twin is None
                ]
                arena = self.arena
                for oid in dead:
                    arena.free(cache.pop(oid).payload)
                self.gc_cache_drops += len(dead)
        if required:
            if kernel_module is not None:
                self.gc_notice_prunes += kernel_module.prune_floors(
                    required, released, self.homes
                )
            else:
                homes = self.homes
                prunable = [
                    oid
                    for oid, floor in required.items()
                    if floor <= released.get(oid, 0) or oid in homes
                ]
                for oid in prunable:
                    del required[oid]
                self.gc_notice_prunes += len(prunable)
        self.gc_notice_prunes += elided
        # deferred-work queues are provably drained at a completed
        # barrier (flush blocks on diff acks; transfers precede release
        # delivery), but stale empty keys cost memory — compact them.
        self.pending_foreign.prune_empty()
        self._pending_diffs.prune_empty()
        if self.metrics is not None:
            arena_stats = self.arena.stats()
            node = self.node_id
            self.metrics.gauge("dsm_arena_live_bytes", node=node).set(
                arena_stats["live_bytes"]
            )
            self.metrics.gauge("dsm_arena_pooled_bytes", node=node).set(
                arena_stats["pooled_bytes"]
            )
            self.metrics.gauge("dsm_cache_entries", node=node).set(len(cache))
            self.metrics.gauge("dsm_notice_floors", node=node).set(
                len(required)
            )

    # -- locks ------------------------------------------------------------

    def acquire(self, handle: LockHandle) -> Generator[Any, Any, None]:
        """Acquire a distributed lock; applies piggybacked write notices.

        Acquiring closes the current interval: pending diffs are flushed
        first (so every synchronized update propagates separately — the
        GOS reflects remote writes at each synchronization point), and the
        interval's notices ride on the acquire message.
        """
        self.stats.incr("lock_acquire")
        sp = self._sp
        op = None
        if sp is not None:
            op = sp.open(
                "lock_acquire",
                self.sim.now,
                handle.lock_id,
                self.node_id,
                home=handle.home,
            )
        own_notices = yield from self.flush_diffs(op)
        if self.lock_discipline == "retry":
            notices = yield from self._acquire_retry(handle, own_notices)
        else:
            notices = yield from self._acquire_fifo(handle, own_notices)
        self.apply_notices(notices)
        self.invalidate_all_cached()
        self.interval += 1
        if sp is not None:
            sp.close(
                op, "lock_acquire", self.sim.now, handle.lock_id, self.node_id
            )
        if self._m_lock_epoch_us is not None:
            self._lock_epochs.begin(handle.lock_id, self.sim.now)

    def _acquire_fifo(
        self, handle: LockHandle, own_notices: dict[int, int]
    ) -> Generator[Any, Any, dict[int, int]]:
        request_id = self._next_request_id()
        if handle.home == self.node_id:
            self.lock_table.add_notices(handle.lock_id, own_notices)
            granted = self.lock_table.try_acquire(
                handle.lock_id, self.node_id, request_id
            )
            if granted:
                return self.lock_table.grant_notices(
                    handle.lock_id, self.node_id
                )
            fut = self._Future(label="lock")
            self._lock_waiters[(handle.lock_id, request_id)] = fut
            grant: LockGrantMsg = yield fut
            return grant.notices
        fut = self._Future(label="lock")
        self._lock_waiters[(handle.lock_id, request_id)] = fut
        self._send(
            handle.home,
            MsgCategory.LOCK_ACQUIRE,
            self._notice_size(own_notices),
            LockAcquireMsg(
                lock_id=handle.lock_id,
                requester=self.node_id,
                request_id=request_id,
                notices=own_notices,
            ),
        )
        grant = yield fut
        return grant.notices

    def _acquire_retry(
        self, handle: LockHandle, own_notices: dict[int, int]
    ) -> Generator[Any, Any, dict[int, int]]:
        """Retry discipline: no wait queue — a busy lock is re-tried after
        a seeded random backoff.  Models the paper's runtime, where the
        releasing thread can win the lock again ("the actual consecutive
        writing times could be a multiple of r ... randomly at runtime")."""
        from repro.sim.process import Delay

        send_notices = own_notices
        while True:
            request_id = self._next_request_id()
            if handle.home == self.node_id:
                self.lock_table.add_notices(handle.lock_id, send_notices)
                if self.lock_table.state(handle.lock_id).holder is None:
                    self.lock_table.try_acquire(
                        handle.lock_id, self.node_id, request_id
                    )
                    return self.lock_table.grant_notices(
                        handle.lock_id, self.node_id
                    )
            else:
                fut = self._Future(label="lock")
                self._lock_waiters[(handle.lock_id, request_id)] = fut
                self._send(
                    handle.home,
                    MsgCategory.LOCK_ACQUIRE,
                    self._notice_size(send_notices),
                    LockAcquireMsg(
                        lock_id=handle.lock_id,
                        requester=self.node_id,
                        request_id=request_id,
                        notices=send_notices,
                    ),
                )
                grant: LockGrantMsg = yield fut
                if not grant.busy:
                    return grant.notices
            send_notices = {}  # notices were delivered on the first try
            yield Delay(
                LOCK_RETRY_BASE_US
                + self._rng.uniform(0.0, LOCK_RETRY_JITTER_US)
            )

    def release(self, handle: LockHandle) -> Generator[Any, Any, None]:
        """Flush this interval's diffs, then release the lock with notices."""
        if self._m_lock_epoch_us is not None:
            span = self._lock_epochs.end(handle.lock_id, self.sim.now)
            if span is not None:
                self._m_lock_epoch_us.observe(span)
        sp = self._sp
        op = None
        if sp is not None:
            op = sp.open(
                "lock_release",
                self.sim.now,
                handle.lock_id,
                self.node_id,
                home=handle.home,
            )
        notices = yield from self.flush_diffs(op)
        if handle.home == self.node_id:
            self._manager_release(handle.lock_id, self.node_id, notices)
        else:
            self._send(
                handle.home,
                MsgCategory.LOCK_RELEASE,
                self._notice_size(notices),
                LockReleaseMsg(
                    lock_id=handle.lock_id,
                    releaser=self.node_id,
                    notices=notices,
                ),
            )
        if sp is not None:
            sp.close(
                op, "lock_release", self.sim.now, handle.lock_id, self.node_id
            )

    def _manager_release(
        self, lock_id: int, releaser: int, notices: dict[int, int]
    ) -> None:
        waiter = self.lock_table.release(lock_id, releaser, notices)
        if waiter is None:
            return
        grant = self.lock_table.grant_notices(lock_id, waiter.node)
        if waiter.node == self.node_id:
            fut = self._lock_waiters.pop((lock_id, waiter.request_id))
            fut.resolve(
                LockGrantMsg(
                    lock_id=lock_id,
                    request_id=waiter.request_id,
                    notices=grant,
                )
            )
        else:
            self._send(
                waiter.node,
                MsgCategory.LOCK_GRANT,
                self._notice_size(grant),
                LockGrantMsg(
                    lock_id=lock_id,
                    request_id=waiter.request_id,
                    notices=grant,
                ),
            )

    # -- barriers ---------------------------------------------------------

    def register_barrier(self, handle: BarrierHandle) -> None:
        """Install manager state for a barrier homed at this node."""
        if handle.home != self.node_id:
            raise ValueError(
                f"barrier {handle.barrier_id} homed at {handle.home}, "
                f"not {self.node_id}"
            )
        self.barriers[handle.barrier_id] = BarrierState(handle)

    def barrier(
        self, handle: BarrierHandle, round_no: int
    ) -> Generator[Any, Any, None]:
        """One barrier round: flush diffs, arrive, wait for the release."""
        sp = self._sp
        op = None
        if sp is not None:
            op = sp.open(
                "barrier_wait",
                self.sim.now,
                handle.barrier_id,
                self.node_id,
                round=round_no,
            )
        notices = yield from self.flush_diffs(op)
        fut = self._Future(label="barrier")
        self._barrier_waiters.setdefault(
            (handle.barrier_id, round_no), []
        ).append(fut)
        arrive = BarrierArriveMsg(
            barrier_id=handle.barrier_id,
            node=self.node_id,
            round_no=round_no,
            notices=notices,
        )
        if handle.home == self.node_id:
            self._manager_barrier_arrive(arrive)
        else:
            self._send(
                handle.home,
                MsgCategory.BARRIER_ARRIVE,
                self._notice_size(notices),
                arrive,
            )
        release: BarrierReleaseMsg = yield fut
        # With barrier-epoch GC on, merging the release's notices into
        # required_version is a provable no-op: collect_garbage (called
        # synchronously below, nothing observes the floors in between)
        # prunes exactly the floors at or below the released versions,
        # and every merged floor is by construction == its released
        # version.  Skipping the merge leaves required_version
        # bit-identical and removes an O(#notices) sweep per node per
        # epoch — the difference between O(N^2) and O(N^3) total work
        # for N-node barrier apps.  With GC off the floors accumulate
        # (that is the memory-ablation leg), so merge as before.
        if not self.gc_enabled:
            self.apply_notices(release.notices)
        self.home_hint.update(release.new_homes)
        self.invalidate_all_cached()
        self.interval += 1
        if self.gc_enabled:
            self.collect_garbage(release.notices)
        if sp is not None:
            sp.close(
                op,
                "barrier_wait",
                self.sim.now,
                handle.barrier_id,
                self.node_id,
                round=round_no,
            )

    def _manager_barrier_arrive(self, msg: BarrierArriveMsg) -> None:
        state = self.barriers[msg.barrier_id]
        complete = state.arrive(msg.node, msg.notices, msg.round_no)
        if not complete:
            return
        round_no, merged, writers = state.complete_round()
        self.stats.incr("barrier_round")
        if self._m_barrier_interval_us is not None:
            timer = self._barrier_epochs.setdefault(
                msg.barrier_id, EpochTimer()
            )
            span = timer.lap(self.sim.now)
            if span is not None:
                self._m_barrier_interval_us.observe(span)
        new_homes: dict[int, int] = {}
        if self.policy.wants_barrier_migration():
            new_homes = self._order_barrier_migrations(writers)
        release = BarrierReleaseMsg(
            barrier_id=msg.barrier_id,
            round_no=round_no,
            notices=merged,
            new_homes=new_homes,
        )
        # One release object — with its one merged-notices snapshot — is
        # shared by every copy of the fan-out; receivers only read it.
        if self.release_fanout is not None:
            release.root = self.node_id
            release.fanout = self.release_fanout
            self._forward_release(release)
        else:
            size = self._notice_size(merged) + REQUEST_BYTES * len(new_homes)
            for dst in range(self.network.nnodes):
                if dst == self.node_id:
                    continue
                self._send(dst, MsgCategory.BARRIER_RELEASE, size, release)
        self._deliver_barrier_release(release)

    def _order_barrier_migrations(
        self, writers: dict[int, set[int]]
    ) -> dict[int, int]:
        """JiaJia-style: migrate single-writer objects to their writer."""
        new_homes: dict[int, int] = {}
        for oid in sorted(writers):
            writer_set = writers[oid]
            if len(writer_set) != 1:
                continue
            writer = next(iter(writer_set))
            current = self.manager_home_map.get(oid, self.heap.initial_home(oid))
            if current == writer:
                continue
            self.manager_home_map[oid] = writer
            new_homes[oid] = writer
            order = MigrateOrderMsg(oid=oid, new_home=writer)
            if current == self.node_id:
                self._execute_migrate_order(order)
            else:
                self._send(
                    current, MsgCategory.CONTROL, REQUEST_BYTES, order
                )
        return new_homes

    def _forward_release(self, release: BarrierReleaseMsg) -> None:
        """Relay a multicast barrier release to this node's tree children.

        Every non-root node receives exactly one copy (N-1 messages
        total, like the direct burst) but no NIC injects more than
        ``fanout`` back to back, so the release reaches the whole
        cluster in O(log_k N) serialization depth instead of O(N).
        """
        size = self._notice_size(release.notices) + REQUEST_BYTES * len(
            release.new_homes
        )
        for dst in fanout_children(
            self.node_id, release.root, release.fanout, self.network.nnodes
        ):
            self._send(dst, MsgCategory.BARRIER_RELEASE, size, release)

    def _on_barrier_release(self, release: BarrierReleaseMsg) -> None:
        if release.fanout:
            self._forward_release(release)
        self._deliver_barrier_release(release)

    def _deliver_barrier_release(self, release: BarrierReleaseMsg) -> None:
        waiters = self._barrier_waiters.pop(
            (release.barrier_id, release.round_no), []
        )
        for fut in waiters:
            fut.resolve(release)

    # ------------------------------------------------------------------
    # message handling
    # ------------------------------------------------------------------

    def on_message(self, message: Message) -> None:
        """Single dispatch point for every message arriving at this node.

        One dict lookup on the (identity-hashed) category replaces the
        historical 8-deep elif chain — at tens of thousands of messages
        per run the average chain depth was a measurable slice of the
        PR-1 profile.
        """
        try:
            handler = self._msg_dispatch[message.category]
        except KeyError:  # pragma: no cover - defensive
            raise RuntimeError(f"unhandled message {message!r}") from None
        handler(message.payload)

    def _build_dispatch(self) -> dict[MsgCategory, Any]:
        """Category -> bound payload handler (built once per engine)."""
        if self._kernel is not None:
            # C twin of _resolve_reply over the same waiter dict (which
            # is bound once in __init__ and never rebound).
            resolve_reply = self._kernel.ReplyRouter(self._reply_waiters)
        else:
            resolve_reply = self._resolve_reply
        return {
            MsgCategory.OBJ_REQUEST: self._on_obj_request_msg,
            MsgCategory.OBJ_REPLY: resolve_reply,
            MsgCategory.OBJ_REPLY_MIG: resolve_reply,
            MsgCategory.REDIRECT: resolve_reply,
            MsgCategory.SHIP_REQUEST: self._handle_ship,
            MsgCategory.SHIP_REPLY: resolve_reply,
            MsgCategory.DIFF: self._handle_diff,
            MsgCategory.DIFF_ACK: resolve_reply,
            MsgCategory.LOCK_ACQUIRE: self._handle_lock_acquire,
            MsgCategory.LOCK_GRANT: self._on_lock_grant,
            MsgCategory.LOCK_RELEASE: self._on_lock_release,
            MsgCategory.BARRIER_ARRIVE: self._manager_barrier_arrive,
            MsgCategory.BARRIER_RELEASE: self._on_barrier_release,
            MsgCategory.HOME_BCAST: self._on_home_bcast,
            MsgCategory.HOME_UPDATE: self._on_home_update,
            MsgCategory.HOME_QUERY: self._handle_home_query,
            MsgCategory.HOME_ANSWER: resolve_reply,
            MsgCategory.CONTROL: self._on_control,
        }

    def _resolve_reply(self, payload: Any) -> None:
        self._reply_waiters.pop(payload.request_id).resolve(payload)

    def _on_obj_request_msg(self, payload: Any) -> None:
        if isinstance(payload, ObjBatchRequest):
            self._handle_batch_request(payload)
        else:
            self._handle_obj_request(payload)

    def _on_lock_grant(self, payload: LockGrantMsg) -> None:
        fut = self._lock_waiters.pop((payload.lock_id, payload.request_id))
        fut.resolve(payload)

    def _on_lock_release(self, payload: LockReleaseMsg) -> None:
        self._manager_release(payload.lock_id, payload.releaser, payload.notices)

    def _on_home_bcast(self, payload: dict) -> None:
        # Multicast relay (BroadcastMechanism(fanout=k)): forward the
        # shared announcement down the tree before applying the hint.
        # The new home also relays, but applying the hint there is
        # harmless: it names the node itself, and if the object moved on
        # again the retained forwarding pointer still redirects.
        if payload.get("fanout"):
            for dst in fanout_children(
                self.node_id,
                payload["root"],
                payload["fanout"],
                self.network.nnodes,
            ):
                self._send(dst, MsgCategory.HOME_BCAST, NOTIFY_BYTES, payload)
        self.home_hint[payload["oid"]] = payload["new_home"]

    def _on_home_update(self, payload: dict) -> None:
        self.manager_home_map[payload["oid"]] = payload["new_home"]

    def _on_control(self, payload: Any) -> None:
        if isinstance(payload, MigrateOrderMsg):
            self._execute_migrate_order(payload)
        elif isinstance(payload, HomeTransferMsg):
            self._install_home_transfer(payload)
        else:  # pragma: no cover - defensive
            raise RuntimeError(f"unknown control payload {payload!r}")

    # -- home side ---------------------------------------------------------

    def _handle_obj_request(self, request: ObjRequest) -> None:
        entry = self.homes.get(request.oid)
        if entry is None:
            if request.oid in self.forwards:
                self.stats.incr("redir")
                if self.tracer is not None and self.tracer.wants("redirect"):
                    self.tracer.record(
                        "redirect",
                        self.sim.now,
                        request.oid,
                        self.node_id,
                        obsolete_home=self.node_id,
                        requester=request.requester,
                    )
                directive = self.mechanism.miss_directive(self, request.oid)
                self._send(
                    request.requester,
                    MsgCategory.REDIRECT,
                    REQUEST_BYTES,
                    RedirectReply(
                        oid=request.oid,
                        request_id=request.request_id,
                        directive=directive,
                    ),
                )
            else:
                # Home transfer in flight towards this node: defer.
                self.stats.incr("deferred_request")
                self.pending_foreign.add(request.oid, request)
            return
        if entry.version < request.min_version:
            self.stats.incr("deferred_request")
            entry.pending.push(request.min_version, request)
            return
        self._serve_request(entry, request)

    def _serve_request(self, entry: HomeEntry, request: ObjRequest) -> None:
        oid = request.oid
        state = entry.state
        if self._kernel is not None:
            # One C call for the monitor prelude (remote-read recording,
            # redirection accumulation, the remote_read stats bump).
            self._kernel.record_request(
                state, request.requester, request.hops, self.stats.events
            )
        else:
            state.record_remote_read(request.requester)
            state.record_redirections(request.hops)
            self.stats.incr("remote_read")
        if self._m_redirect_hops is not None:
            self._m_redirect_hops.observe(request.hops)
        alpha = self.alpha(oid, state)
        migrate = self.policy.should_migrate(
            state, request.requester, alpha, request.for_write
        )
        self._trace_decision(oid, state, request.requester, alpha, migrate)
        obj = self.heap.get(oid)
        if not migrate:
            self.stats.incr("obj")
            self._send(
                request.requester,
                MsgCategory.OBJ_REPLY,
                obj.size_bytes + REPLY_EXTRA_BYTES,
                ObjReply(
                    oid=oid,
                    request_id=request.request_id,
                    version=entry.version,
                    data=self._dst_arena(request.requester).take_copy(
                        entry.payload
                    ),
                    home=self.node_id,
                ),
            )
            return
        # -- migration fires ------------------------------------------------
        self.policy.on_migrated(state, alpha)
        self._trace_migration(oid, request.requester, state)
        mig_op = None
        if self._sp is not None:
            # child of the fault that triggered the decision; closed by the
            # requester when it installs the home (_install_reply)
            mig_op = self._sp.open(
                "migration",
                self.sim.now,
                oid,
                self.node_id,
                parent=request.op_id,
                target=request.requester,
            )
        self.stats.incr("mig")
        self.stats.incr("migration")
        self._close_dirty_home_interval(oid, entry)
        self._send(
            request.requester,
            MsgCategory.OBJ_REPLY_MIG,
            obj.size_bytes + REPLY_EXTRA_BYTES + MONITOR_BYTES,
            ObjReply(
                oid=oid,
                request_id=request.request_id,
                version=entry.version,
                data=self._dst_arena(request.requester).take_copy(
                    entry.payload
                ),
                home=request.requester,
                migrated=True,
                monitor=state,
                op_id=mig_op,
            ),
        )
        self._demote_home(oid, entry, request.requester)
        # Any version-deferred requests now chase the new home.
        for pending in entry.pending.drain():
            self._handle_obj_request(pending)

    def _trace_decision(
        self,
        oid: int,
        state: ObjectAccessState,
        requester: int,
        alpha: float,
        migrated: bool,
    ) -> None:
        traced = self.tracer is not None and self.tracer.wants("decision")
        metered = self.metrics is not None
        if not (traced or metered or self._log_debug):
            return
        threshold = self.policy.current_threshold(state, alpha)
        if traced:
            self.tracer.record(
                "decision",
                self.sim.now,
                oid,
                self.node_id,
                requester=requester,
                threshold=threshold,
                consecutive=state.consecutive_writes,
                exclusive_home_writes=state.exclusive_home_writes,
                redirections=state.redirections,
                migrated=migrated,
                writer=state.consecutive_writer,
                alpha=alpha,
                base=state.threshold_base,
            )
        if metered:
            if threshold is not None:
                self.metrics.gauge("dsm_threshold", oid=oid).set(threshold)
            self.metrics.counter(
                "dsm_decisions_total", node=self.node_id, migrated=migrated
            ).inc()
        if self._log_debug:
            self.logger.debug(
                "decision",
                node=self.node_id,
                oid=oid,
                requester=requester,
                threshold=threshold,
                consecutive=state.consecutive_writes,
                migrated=migrated,
            )

    def _trace_migration(self, oid: int, new_home: int, state) -> None:
        if self.tracer is not None and self.tracer.wants("migration"):
            self.tracer.record(
                "migration",
                self.sim.now,
                oid,
                self.node_id,
                old_home=self.node_id,
                new_home=new_home,
                frozen_threshold=state.threshold_base,
            )
        if self._m_migrations is not None:
            self._m_migrations.inc()
        if self._log_info:
            self.logger.info(
                "migration",
                oid=oid,
                old_home=self.node_id,
                new_home=new_home,
                frozen_threshold=state.threshold_base,
            )

    def _close_dirty_home_interval(self, oid: int, entry: HomeEntry) -> None:
        """If the local thread wrote the home copy this interval, bump the
        version before shipping the home away, and carry the notice so the
        next local release still announces the write."""
        if oid in self.home_dirty:
            entry.version += 1
            self.home_dirty.discard(oid)
            if self.carry_notices.get(oid, 0) < entry.version:
                self.carry_notices[oid] = entry.version

    def _demote_home(self, oid: int, entry: HomeEntry, new_home: int) -> None:
        """Convert our home entry to a valid cached copy + forwarding pointer.

        Keeps the payload array object itself so local threads holding a
        reference from a ``read``/``write`` this interval keep writing into
        the node's own (now cached) copy; the shipped image was a snapshot.
        """
        del self.homes[oid]
        self.forwards[oid] = new_home
        self.home_hint[oid] = new_home
        self.cache[oid] = CacheEntry(
            payload=entry.payload, version=entry.version, mode=AccessMode.READ
        )
        self.mechanism.on_migration(self, oid, new_home)

    def _handle_diff(self, msg: DiffMsg) -> None:
        entry = self.homes.get(msg.oid)
        if entry is None:
            if msg.oid in self.forwards:
                # Forward the diff along the chain (writer's hint was stale).
                self.stats.incr("diff_forward")
                msg.hops += 1
                self._send(
                    self.forwards[msg.oid],
                    MsgCategory.DIFF,
                    msg.diff.size_bytes + REQUEST_BYTES,
                    msg,
                )
            else:
                # Home transfer towards this node still in flight: defer.
                self.stats.incr("deferred_diff")
                self._pending_diffs.add(msg.oid, msg)
            return
        version_before = entry.version
        apply_diff(entry.payload, msg.diff)
        entry.version += 1
        entry.state.record_remote_write(msg.writer, msg.diff.size_bytes)
        if self._tr_diff_apply:
            self.tracer.record(
                "diff_apply",
                self.sim.now,
                msg.oid,
                self.node_id,
                writer=msg.writer,
                size_bytes=msg.diff.size_bytes,
                version_before=version_before,
                version_after=entry.version,
            )
        self.stats.incr("diff")
        self.stats.incr("remote_write")
        if self._m_diff_bytes is not None:
            self._m_diff_bytes.observe(msg.diff.size_bytes)
        self._send(
            msg.writer,
            MsgCategory.DIFF_ACK,
            ACK_BYTES,
            DiffAck(
                oid=msg.oid,
                request_id=msg.request_id,
                version=entry.version,
                home=self.node_id,
            ),
        )
        self._recheck_pending(msg.oid)

    def _recheck_pending(self, oid: int) -> None:
        """Serve version-deferred requests the latest bump made eligible.

        The version index pops exactly the newly-eligible requests (in
        arrival order), so a bump costs O(k log n) for k served instead
        of the historical O(n) full rescan — by far the hottest call
        site in the PR-1 profile.  If serving one of them migrates the
        home away, the rest of the batch chases the new home like any
        other stale-hint request.
        """
        entry = self.homes.get(oid)
        if entry is None or not entry.pending:
            return
        for request in entry.pending.pop_ready(entry.version):
            if oid in self.homes:
                self._serve_request(entry, request)
            else:
                self._handle_obj_request(request)

    def _serve_pending_foreign(self, oid: int) -> None:
        for request in self.pending_foreign.pop_all(oid):
            if isinstance(request, ShipRequest):
                self._handle_ship(request)
            else:
                self._handle_obj_request(request)

    def _serve_pending_diffs(self, oid: int) -> None:
        for diff_msg in self._pending_diffs.pop_all(oid):
            self._handle_diff(diff_msg)

    # -- lock manager --------------------------------------------------------

    def _handle_lock_acquire(self, msg: LockAcquireMsg) -> None:
        self.lock_table.add_notices(msg.lock_id, msg.notices)
        if (
            self.lock_discipline == "retry"
            and self.lock_table.state(msg.lock_id).holder is not None
        ):
            self._send(
                msg.requester,
                MsgCategory.LOCK_GRANT,
                SYNC_BASE_BYTES,
                LockGrantMsg(
                    lock_id=msg.lock_id,
                    request_id=msg.request_id,
                    notices={},
                    busy=True,
                ),
            )
            return
        granted = self.lock_table.try_acquire(
            msg.lock_id, msg.requester, msg.request_id
        )
        if not granted:
            return  # queued; the grant is sent when the holder releases
        notices = self.lock_table.grant_notices(msg.lock_id, msg.requester)
        self._send(
            msg.requester,
            MsgCategory.LOCK_GRANT,
            self._notice_size(notices),
            LockGrantMsg(
                lock_id=msg.lock_id, request_id=msg.request_id, notices=notices
            ),
        )

    # -- home manager / barrier migration ------------------------------------

    def _handle_home_query(self, msg: HomeQueryMsg) -> None:
        home = self.manager_home_map.get(msg.oid, self.heap.initial_home(msg.oid))
        self._send(
            msg.requester,
            MsgCategory.HOME_ANSWER,
            REQUEST_BYTES,
            HomeAnswerMsg(oid=msg.oid, request_id=msg.request_id, home=home),
        )

    def _execute_migrate_order(self, order: MigrateOrderMsg) -> None:
        """Barrier-ordered migration (JiaJia): ship the home to the writer."""
        entry = self.homes.get(order.oid)
        if entry is None:  # pragma: no cover - manager orders serially
            raise RuntimeError(
                f"migrate order for oid {order.oid} at node {self.node_id}, "
                "which is not the home"
            )
        state = entry.state
        self.policy.on_migrated(state, self.alpha(order.oid, state))
        self._trace_migration(order.oid, order.new_home, state)
        mig_op = None
        if self._sp is not None:
            # barrier-ordered: no requester fault to parent under
            mig_op = self._sp.open(
                "migration",
                self.sim.now,
                order.oid,
                self.node_id,
                parent=None,
                target=order.new_home,
            )
        self.stats.incr("mig")
        self.stats.incr("migration")
        self._close_dirty_home_interval(order.oid, entry)
        obj = self.heap.get(order.oid)
        self._send(
            order.new_home,
            MsgCategory.CONTROL,
            obj.size_bytes + REPLY_EXTRA_BYTES + MONITOR_BYTES,
            HomeTransferMsg(
                oid=order.oid,
                version=entry.version,
                data=self._dst_arena(order.new_home).take_copy(entry.payload),
                monitor=state,
                op_id=mig_op,
            ),
        )
        self._demote_home(order.oid, entry, order.new_home)
        for pending in entry.pending.drain():
            self._handle_obj_request(pending)

    def _install_home_transfer(self, msg: HomeTransferMsg) -> None:
        """Become the home of ``oid`` (barrier-ordered migration).

        If we hold a cached copy, the home payload reuses *that array
        object* (updated in place), so any reference a local thread took
        this interval keeps pointing at the node's authoritative copy.  A
        dirty WRITE copy (the local thread started writing before the
        transfer arrived) additionally has its uncommitted changes replayed
        on top of the transferred image and becomes a pending home write.
        """
        oid = msg.oid
        self.forwards.pop(oid, None)  # we are home again: drop stale pointer
        cached = self.cache.pop(oid, None)
        if cached is None:
            payload = msg.data
        else:
            payload = cached.payload
            local_diff = None
            if cached.twin is not None:
                local_diff = compute_diff(
                    oid,
                    cached.twin,
                    cached.payload,
                    scratch=self.arena.bool_scratch(cached.payload.size),
                )
                if self._tr_twin_free:
                    self.tracer.record(
                        "twin_free",
                        self.sim.now,
                        oid,
                        self.node_id,
                        interval=self.interval,
                    )
                self.arena.free(cached.twin)
                cached.twin = None
            payload[:] = msg.data
            # the transferred image was absorbed into the cached array;
            # its receive buffer (carved from our arena) is dead
            self.arena.free(msg.data)
            if local_diff is not None:
                apply_diff(payload, local_diff)
                self.dirty.discard(oid)
                self.home_dirty.add(oid)
                msg.monitor.record_home_write()
        self.homes[oid] = HomeEntry(
            payload=payload, version=msg.version, state=msg.monitor
        )
        self.home_hint[oid] = self.node_id
        if self._tr_home_install:
            self.tracer.record(
                "home_install",
                self.sim.now,
                oid,
                self.node_id,
                origin="transfer",
                version=msg.version,
            )
        if self._sp is not None and msg.op_id is not None:
            self._sp.close(
                msg.op_id,
                "migration",
                self.sim.now,
                oid,
                self.node_id,
                version=msg.version,
            )
        self._serve_pending_foreign(oid)
        self._serve_pending_diffs(oid)
        for fut in self._local_home_waits.pop(oid, []):
            fut.resolve(None)

    # -- interval bookkeeping (JiaJia) ----------------------------------------

    def clear_interval_writers(self) -> None:
        """Reset per-barrier-interval writer sets of local home entries."""
        for entry in self.homes.values():
            entry.state.interval_writers.clear()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<DsmEngine node={self.node_id} homes={len(self.homes)} "
            f"cached={len(self.cache)}>"
        )
