"""Home-based LRC object DSM (the paper's GOS protocol substrate).

Each cluster node runs one :class:`~repro.dsm.protocol.DsmEngine`, which
implements:

* per-node object **caches** with invalid/read/write access states and
  twin creation on the first write of an interval (:mod:`repro.dsm.cache`);
* the **home side** — the always-valid home copy, its version counter, and
  the access monitor feeding the migration policy (:mod:`repro.dsm.home`);
* **diff propagation** with version-carrying acks, **object fault-in**, and
  **home migration** with forwarding-pointer / broadcast / home-manager
  notification (:mod:`repro.dsm.protocol`, :mod:`repro.dsm.redirection`);
* distributed **locks** (:mod:`repro.dsm.locks`) and **barriers**
  (:mod:`repro.dsm.barrier`) that piggyback LRC write notices;
* a **homeless (TreadMarks-style) LRC** baseline for the paper's §1
  motivation (:mod:`repro.dsm.homeless`).
"""

from repro.dsm.cache import AccessMode, CacheEntry
from repro.dsm.home import HomeEntry
from repro.dsm.homeless import HomelessEngine
from repro.dsm.protocol import DsmEngine
from repro.dsm.redirection import (
    BroadcastMechanism,
    ForwardingPointerMechanism,
    HomeManagerMechanism,
    NotificationMechanism,
)

__all__ = [
    "AccessMode",
    "BroadcastMechanism",
    "CacheEntry",
    "DsmEngine",
    "ForwardingPointerMechanism",
    "HomeEntry",
    "HomelessEngine",
    "HomeManagerMechanism",
    "NotificationMechanism",
]
