"""Distributed locks with LRC write-notice piggybacking.

Each lock has a fixed *home* (manager) node.  The manager keeps the lock's
holder, a FIFO wait queue, and the accumulated write notices of every
release of this lock — lazy release consistency: the notices travel to the
next acquirer on the grant message, which then invalidates its stale
cached copies.

Grant notices are sent *incrementally*: the manager remembers how much of
its notice history each node has already seen for this lock and sends only
newer entries, so grant sizes stay proportional to actual recent writes.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.memory.version import merge_notices


@dataclass(frozen=True, slots=True)
class LockHandle:
    """Application-facing lock identity: id + manager (home) node."""

    lock_id: int
    home: int

    def __post_init__(self) -> None:
        if self.lock_id < 0 or self.home < 0:
            raise ValueError(f"invalid lock handle ({self.lock_id}, {self.home})")


@dataclass(slots=True)
class _Waiter:
    node: int
    request_id: tuple[int, int]


@dataclass(slots=True)
class LockState:
    """Manager-side state of one lock."""

    lock_id: int
    holder: int | None = None  # node id currently holding the lock
    queue: deque = field(default_factory=deque)
    #: Accumulated notice map oid -> max version, in arrival order.
    notices: dict[int, int] = field(default_factory=dict)
    #: Monotone counter of notice updates, for incremental grants.
    notice_epoch: int = 0
    #: Epoch each (oid) entry was last bumped at.
    _entry_epoch: dict[int, int] = field(default_factory=dict)
    #: Last epoch each node has been brought up to.
    _node_epoch: dict[int, int] = field(default_factory=dict)


class LockTable:
    """All locks managed at one node."""

    def __init__(self) -> None:
        self._locks: dict[int, LockState] = {}

    def state(self, lock_id: int) -> LockState:
        if lock_id not in self._locks:
            self._locks[lock_id] = LockState(lock_id)
        return self._locks[lock_id]

    def try_acquire(
        self, lock_id: int, node: int, request_id: tuple[int, int]
    ) -> bool:
        """Grant immediately if free, else enqueue.  True if granted now."""
        lock = self.state(lock_id)
        if lock.holder is None:
            lock.holder = node
            return True
        lock.queue.append(_Waiter(node, request_id))
        return False

    def release(
        self, lock_id: int, node: int, notices: dict[int, int]
    ) -> _Waiter | None:
        """Record the release (+its notices); return the next waiter if any.

        The caller is responsible for sending the grant to the returned
        waiter; this method already marks it as the new holder.
        """
        lock = self.state(lock_id)
        if lock.holder != node:
            raise RuntimeError(
                f"lock {lock_id} released by node {node} but held by "
                f"{lock.holder}"
            )
        self.add_notices(lock_id, notices)
        if lock.queue:
            waiter = lock.queue.popleft()
            lock.holder = waiter.node
            return waiter
        lock.holder = None
        return None

    def add_notices(self, lock_id: int, notices: dict[int, int]) -> None:
        """Fold a release's notices into the lock's accumulated map."""
        lock = self.state(lock_id)
        if not notices:
            return
        lock.notice_epoch += 1
        before = dict(lock.notices)
        merge_notices(lock.notices, notices)
        for oid, version in notices.items():
            if before.get(oid, 0) < version:
                lock._entry_epoch[oid] = lock.notice_epoch

    def grant_notices(self, lock_id: int, node: int) -> dict[int, int]:
        """Notices ``node`` has not seen yet for this lock; marks them seen."""
        lock = self.state(lock_id)
        seen = lock._node_epoch.get(node, 0)
        fresh = {
            oid: lock.notices[oid]
            for oid, epoch in lock._entry_epoch.items()
            if epoch > seen
        }
        lock._node_epoch[node] = lock.notice_epoch
        return fresh
