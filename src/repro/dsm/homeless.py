"""Homeless (TreadMarks-style) LRC baseline.

The paper's §1 motivates home-based protocols by the weaknesses of the
homeless multiple-writer protocol: to serve a fault, the faulting process
must fetch diffs *from every process that updated the unit* (multiple
round trips), every diff is applied once per fetching process, and diffs
accumulate in memory until a global garbage collection.

:class:`HomelessEngine` implements that protocol on the same simulator,
locks, and barriers:

* there are no homes — every node lazily materialises the initial image
  (as TreadMarks processes do at startup) and keeps it coherent by
  fetching *diffs*, not objects;
* a writer's diffs stay local at flush time (no diff propagation
  messages); the write notice ``(oid, writer, seq)`` travels with the
  synchronization operation;
* on an access fault, the faulting node requests the unseen diff ranges
  from each writer named by its notices — one round trip per writer —
  and applies them in causal (flush-timestamp) order;
* the cumulative bytes of diffs retained at writers is tracked in the
  ``homeless_diff_bytes`` statistic: the memory-consumption cost the
  paper cites (we never garbage-collect, as TreadMarks between GCs).

Invalidation is notice-driven (true TreadMarks behaviour): a cached copy
stays valid across synchronizations until a write notice names it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator

import numpy as np

from repro.cluster.message import MsgCategory
from repro.cluster.network import Network
from repro.cluster.stats import ClusterStats
from repro.dsm.barrier import BarrierHandle, BarrierState
from repro.dsm.cache import AccessMode
from repro.dsm.locks import LockHandle, LockTable
from repro.memory.arena import Arena, new_arena
from repro.memory.diff import Diff, apply_diff, compute_diff
from repro.memory.heap import ObjectHeap
from repro.memory.twin import make_twin
from repro.sim.engine import Simulator
from repro.sim.future import Future, future_class

REQUEST_BYTES = 8
SYNC_BASE_BYTES = 8
#: One homeless write notice: oid + writer + seq.
NOTICE_BYTES = 16


@dataclass(slots=True)
class _StampedDiff:
    seq: int
    stamp: float  # flush simulated time: causal order for serialized writes
    diff: Diff


@dataclass(slots=True)
class _Replica:
    payload: np.ndarray
    mode: AccessMode = AccessMode.READ
    twin: np.ndarray | None = None
    #: writer -> highest seq applied into payload.
    applied: dict[int, int] = field(default_factory=dict)


@dataclass(slots=True)
class DiffRequest:
    oid: int
    writer_seq_from: int
    requester: int
    request_id: tuple[int, int]


@dataclass(slots=True)
class DiffReply:
    request_id: tuple[int, int]
    diffs: list[_StampedDiff]


@dataclass(slots=True)
class _LockAcquire:
    lock_id: int
    requester: int
    request_id: tuple[int, int]
    notices: dict


@dataclass(slots=True)
class _LockGrant:
    lock_id: int
    request_id: tuple[int, int]
    notices: dict


@dataclass(slots=True)
class _LockRelease:
    lock_id: int
    releaser: int
    notices: dict


@dataclass(slots=True)
class _BarrierArrive:
    barrier_id: int
    node: int
    round_no: int
    notices: dict


@dataclass(slots=True)
class _BarrierRelease:
    barrier_id: int
    round_no: int
    notices: dict


@dataclass(slots=True)
class _GcTraffic:
    """Inert accounting message: the bytes a global diff GC moves.

    The GC's state changes happen at the barrier safe point (see
    HomelessObjectSpace.gc); these messages charge its communication cost
    to the network model."""

    phase: str  # "contribute" or "rebase"


class HomelessEngine:
    """TreadMarks-style LRC protocol instance on one node.

    Notices are ``(oid, writer) -> seq`` maps; ``required`` accumulates
    the highest seq this node must have applied before reading an object.
    """

    def __init__(
        self,
        node_id: int,
        sim: Simulator,
        network: Network,
        heap: ObjectHeap,
        stats: ClusterStats,
        arena: Arena | None = None,
    ):
        self.node_id = node_id
        self.sim = sim
        self.network = network
        self.heap = heap
        self.stats = stats
        #: Pooled payload/twin storage (same discipline as DsmEngine;
        #: replica payloads and twins are strictly node-local here, so
        #: no cross-arena traffic exists at all).
        self.arena: Arena = arena if arena is not None else new_arena()
        #: Hot-path Future class (the kernel's C twin when compiled).
        self._Future = future_class()
        self.replicas: dict[int, _Replica] = {}
        #: Our own diff history per object (retained for remote fetches).
        self.history: dict[int, list[_StampedDiff]] = {}
        #: Bytes of diffs currently retained (zeroed by a global GC).
        self.retained_bytes: int = 0
        #: Space-installed hook run by the barrier manager at round
        #: completion — the global GC's safe point.
        self.on_barrier_complete = None
        self._own_seq: dict[int, int] = {}
        self.dirty: set[int] = set()
        #: (oid, writer) -> seq this node must reach before reading.
        self.required: dict[tuple[int, int], int] = {}
        self.lock_table = LockTable()
        self.barriers: dict[int, BarrierState] = {}
        self._reply_waiters: dict[tuple[int, int], Future] = {}
        self._lock_waiters: dict[tuple[int, tuple[int, int]], Future] = {}
        self._barrier_waiters: dict[tuple[int, int], list[Future]] = {}
        self._req_counter = 0
        network.nodes[node_id].install_handler(self.on_message)

    # -- helpers -----------------------------------------------------------

    def _next_request_id(self) -> tuple[int, int]:
        self._req_counter += 1
        return (self.node_id, self._req_counter)

    def _replica(self, oid: int) -> _Replica:
        replica = self.replicas.get(oid)
        if replica is None:
            # materialise the initial image locally, as TreadMarks
            # processes share identical initial pages
            payload = self.heap.get(oid).new_payload(self.arena)
            initial = getattr(self.heap, "initial_values", {}).get(oid)
            if initial is not None:
                payload[:] = initial
            replica = _Replica(payload=payload)
            self.replicas[oid] = replica
        return replica

    def _notice_size(self, notices: dict) -> int:
        return SYNC_BASE_BYTES + NOTICE_BYTES * len(notices)

    # -- thread-facing operations -------------------------------------------

    def try_read_local(self, oid: int) -> np.ndarray | None:
        """Readable payload if up to date locally, else ``None``.

        Same contract as the home-based protocol's ``try_read_local``:
        lets :class:`~repro.gos.thread.ThreadContext` skip generator
        construction on local hits.  Materialising the initial replica
        is a local operation, so it happens here exactly as in
        :meth:`read`.
        """
        replica = self._replica(oid)
        if replica.mode is AccessMode.INVALID or self._missing_writers(
            oid, replica
        ):
            return None
        return replica.payload

    def try_write_local(self, oid: int) -> np.ndarray | None:
        """Writable payload if up to date locally, else ``None``."""
        replica = self._replica(oid)
        if replica.mode is AccessMode.INVALID or self._missing_writers(
            oid, replica
        ):
            return None
        if replica.twin is None:
            replica.twin = make_twin(replica.payload, self.arena)
            replica.mode = AccessMode.WRITE
        self.dirty.add(oid)
        return replica.payload

    def read(self, oid: int) -> Generator[Any, Any, np.ndarray]:
        replica = self._replica(oid)
        missing = self._missing_writers(oid, replica)
        if missing or replica.mode is AccessMode.INVALID:
            yield from self._fetch_diffs(oid, replica, missing)
            if replica.mode is AccessMode.INVALID:
                replica.mode = AccessMode.READ
        return replica.payload

    def write(self, oid: int) -> Generator[Any, Any, np.ndarray]:
        replica = self._replica(oid)
        missing = self._missing_writers(oid, replica)
        if missing or replica.mode is AccessMode.INVALID:
            yield from self._fetch_diffs(oid, replica, missing)
            if replica.mode is AccessMode.INVALID:
                replica.mode = AccessMode.READ
        if replica.twin is None:
            replica.twin = make_twin(replica.payload, self.arena)
            replica.mode = AccessMode.WRITE
        self.dirty.add(oid)
        return replica.payload

    def _missing_writers(
        self, oid: int, replica: _Replica
    ) -> list[tuple[int, int, int]]:
        """(writer, have_seq, need_seq) for every writer we lag behind."""
        missing = []
        for (roid, writer), need in self.required.items():
            if roid != oid or writer == self.node_id:
                continue
            have = replica.applied.get(writer, 0)
            if have < need:
                missing.append((writer, have, need))
        return missing

    def _fetch_diffs(
        self, oid: int, replica: _Replica, missing: list[tuple[int, int, int]]
    ) -> Generator[Any, Any, None]:
        """One round trip per lagging writer (the §1 pathology), then apply
        all fetched diffs in causal order."""
        pending: list[Future] = []
        for writer, have, _need in sorted(missing):
            request_id = self._next_request_id()
            fut = self._Future(label="diffreq")
            self._reply_waiters[request_id] = fut
            self.network.send(
                self.node_id,
                writer,
                MsgCategory.OBJ_REQUEST,
                REQUEST_BYTES,
                DiffRequest(
                    oid=oid,
                    writer_seq_from=have + 1,
                    requester=self.node_id,
                    request_id=request_id,
                ),
            )
            self.stats.incr("homeless_fetch")
            pending.append(fut)
        fetched: list[tuple[int, _StampedDiff]] = []
        for (writer, _have, _need), fut in zip(sorted(missing), pending):
            reply: DiffReply = yield fut
            fetched.extend((writer, stamped) for stamped in reply.diffs)
        fetched.sort(key=lambda item: (item[1].stamp, item[0], item[1].seq))
        for writer, stamped in fetched:
            apply_diff(replica.payload, stamped.diff)
            self.stats.incr("homeless_diff_applied")
            have = replica.applied.get(writer, 0)
            if stamped.seq > have:
                replica.applied[writer] = stamped.seq

    def read_many(self, oids: list[int]) -> Generator[Any, Any, None]:
        """The homeless protocol has no home to batch against: fetches
        happen per lagging writer anyway, so this is a sequential walk."""
        for oid in oids:
            yield from self.read(oid)

    def ship(self, oid: int, fn, compute_us: float = 0.0, args_bytes: int = 8):
        """Unsupported: method shipping needs a home to ship to."""
        raise NotImplementedError(
            "synchronized method shipping requires the home-based protocol; "
            "the homeless protocol has no authoritative copy to execute at"
        )

    def flush_local(self) -> dict:
        """Close the interval: diff dirty replicas into local history.

        Returns this interval's notices ``{(oid, writer): seq}``.  No
        messages are sent — the homeless protocol moves diffs on demand.
        """
        notices: dict[tuple[int, int], int] = {}
        for oid in sorted(self.dirty):
            replica = self.replicas.get(oid)
            if replica is None or replica.twin is None:
                continue
            diff = compute_diff(
                oid,
                replica.twin,
                replica.payload,
                scratch=self.arena.bool_scratch(replica.payload.size),
            )
            self.arena.free(replica.twin)
            replica.twin = None
            replica.mode = AccessMode.READ
            if diff is None:
                continue
            seq = self._own_seq.get(oid, 0) + 1
            self._own_seq[oid] = seq
            stamped = _StampedDiff(seq=seq, stamp=self.sim.now, diff=diff)
            self.history.setdefault(oid, []).append(stamped)
            self.retained_bytes += diff.size_bytes
            self.stats.incr("homeless_diff_bytes", diff.size_bytes)
            self.stats.incr("diff")  # interval produced one diff
            replica.applied[self.node_id] = seq
            notices[(oid, self.node_id)] = seq
        self.dirty.clear()
        return notices

    def apply_notices(self, notices: dict) -> None:
        for key, seq in notices.items():
            if self.required.get(key, 0) < seq:
                self.required[key] = seq

    # -- locks (manager logic mirrors the home-based engine) -----------------

    def _gossip_notices(self) -> dict:
        """Close the interval and return this node's full known-notice map.

        TreadMarks achieves happens-before transitivity with vector
        timestamps on intervals; we achieve the same causal propagation by
        gossiping the cumulative map on every synchronization message —
        correct, at the cost of message sizes that grow with the number of
        written objects (part of the homeless protocol's overhead story).
        """
        own = self.flush_local()
        self.apply_notices(own)
        return dict(self.required)

    def acquire(self, handle: LockHandle) -> Generator[Any, Any, None]:
        self.stats.incr("lock_acquire")
        own = self._gossip_notices()
        request_id = self._next_request_id()
        if handle.home == self.node_id:
            self.lock_table.add_notices(handle.lock_id, own)
            if self.lock_table.try_acquire(handle.lock_id, self.node_id, request_id):
                notices = self.lock_table.grant_notices(
                    handle.lock_id, self.node_id
                )
            else:
                fut = self._Future(label="hl-lock")
                self._lock_waiters[(handle.lock_id, request_id)] = fut
                notices = yield fut
        else:
            fut = self._Future(label="hl-lock")
            self._lock_waiters[(handle.lock_id, request_id)] = fut
            self.network.send(
                self.node_id,
                handle.home,
                MsgCategory.LOCK_ACQUIRE,
                self._notice_size(own),
                _LockAcquire(
                    lock_id=handle.lock_id,
                    requester=self.node_id,
                    request_id=request_id,
                    notices=own,
                ),
            )
            notices = yield fut
        self.apply_notices(notices)

    def release(self, handle: LockHandle) -> Generator[Any, Any, None]:
        notices = self._gossip_notices()
        if handle.home == self.node_id:
            self._manager_release(handle.lock_id, self.node_id, notices)
        else:
            self.network.send(
                self.node_id,
                handle.home,
                MsgCategory.LOCK_RELEASE,
                self._notice_size(notices),
                _LockRelease(
                    lock_id=handle.lock_id,
                    releaser=self.node_id,
                    notices=notices,
                ),
            )
        return
        yield  # pragma: no cover - keeps this a generator

    def _manager_release(self, lock_id, releaser, notices) -> None:
        waiter = self.lock_table.release(lock_id, releaser, notices)
        if waiter is None:
            return
        grant = self.lock_table.grant_notices(lock_id, waiter.node)
        if waiter.node == self.node_id:
            self._lock_waiters.pop((lock_id, waiter.request_id)).resolve(grant)
        else:
            self.network.send(
                self.node_id,
                waiter.node,
                MsgCategory.LOCK_GRANT,
                self._notice_size(grant),
                _LockGrant(
                    lock_id=lock_id, request_id=waiter.request_id, notices=grant
                ),
            )

    # -- barriers -------------------------------------------------------------

    def register_barrier(self, handle: BarrierHandle) -> None:
        if handle.home != self.node_id:
            raise ValueError("barrier registered on the wrong node")
        self.barriers[handle.barrier_id] = BarrierState(handle)

    def barrier(
        self, handle: BarrierHandle, round_no: int
    ) -> Generator[Any, Any, None]:
        notices = self._gossip_notices()
        fut = self._Future(label="hl-barrier")
        self._barrier_waiters.setdefault(
            (handle.barrier_id, round_no), []
        ).append(fut)
        arrive = _BarrierArrive(
            barrier_id=handle.barrier_id,
            node=self.node_id,
            round_no=round_no,
            notices=notices,
        )
        if handle.home == self.node_id:
            self._manager_barrier_arrive(arrive)
        else:
            self.network.send(
                self.node_id,
                handle.home,
                MsgCategory.BARRIER_ARRIVE,
                self._notice_size(notices),
                arrive,
            )
        release: _BarrierRelease = yield fut
        self.apply_notices(release.notices)

    def _manager_barrier_arrive(self, msg: _BarrierArrive) -> None:
        state = self.barriers[msg.barrier_id]
        if state.arrive(msg.node, msg.notices, msg.round_no):
            round_no, merged, _writers = state.complete_round()
            self.stats.incr("barrier_round")
            if self.on_barrier_complete is not None:
                # global-GC safe point: every party has flushed
                self.on_barrier_complete()
            release = _BarrierRelease(
                barrier_id=msg.barrier_id, round_no=round_no, notices=merged
            )
            size = self._notice_size(merged)
            for dst in range(self.network.nnodes):
                if dst != self.node_id:
                    self.network.send(
                        self.node_id, dst, MsgCategory.BARRIER_RELEASE,
                        size, release,
                    )
            self._deliver_barrier_release(release)

    def _deliver_barrier_release(self, release: _BarrierRelease) -> None:
        for fut in self._barrier_waiters.pop(
            (release.barrier_id, release.round_no), []
        ):
            fut.resolve(release)

    # -- message handling -------------------------------------------------------

    def on_message(self, message) -> None:
        payload = message.payload
        category = message.category
        if category is MsgCategory.OBJ_REQUEST:
            self._handle_diff_request(payload)
        elif category is MsgCategory.OBJ_REPLY:
            self._reply_waiters.pop(payload.request_id).resolve(payload)
        elif category is MsgCategory.LOCK_ACQUIRE:
            self.lock_table.add_notices(payload.lock_id, payload.notices)
            if self.lock_table.try_acquire(
                payload.lock_id, payload.requester, payload.request_id
            ):
                grant = self.lock_table.grant_notices(
                    payload.lock_id, payload.requester
                )
                self.network.send(
                    self.node_id,
                    payload.requester,
                    MsgCategory.LOCK_GRANT,
                    self._notice_size(grant),
                    _LockGrant(
                        lock_id=payload.lock_id,
                        request_id=payload.request_id,
                        notices=grant,
                    ),
                )
        elif category is MsgCategory.LOCK_GRANT:
            self._lock_waiters.pop(
                (payload.lock_id, payload.request_id)
            ).resolve(payload.notices)
        elif category is MsgCategory.LOCK_RELEASE:
            self._manager_release(
                payload.lock_id, payload.releaser, payload.notices
            )
        elif category is MsgCategory.BARRIER_ARRIVE:
            self._manager_barrier_arrive(payload)
        elif category is MsgCategory.BARRIER_RELEASE:
            self._deliver_barrier_release(payload)
        elif category is MsgCategory.CONTROL and isinstance(payload, _GcTraffic):
            pass  # accounting-only message; GC state changed at the safe point
        else:  # pragma: no cover - defensive
            raise RuntimeError(f"homeless engine got {message!r}")

    def _handle_diff_request(self, request: DiffRequest) -> None:
        diffs = [
            stamped
            for stamped in self.history.get(request.oid, [])
            if stamped.seq >= request.writer_seq_from
        ]
        size = REQUEST_BYTES + sum(s.diff.size_bytes for s in diffs)
        self.stats.incr("obj")  # a fault-in service, for comparability
        self.network.send(
            self.node_id,
            request.requester,
            MsgCategory.OBJ_REPLY,
            size,
            DiffReply(request_id=request.request_id, diffs=diffs),
        )
