"""Indexed containers for deferred protocol work.

The protocol engine parks three kinds of work it cannot serve yet:

* object requests demanding a version the home copy has not reached
  (:class:`VersionIndexedQueue`, one per home entry) — previously a flat
  list rescanned in full on *every* version bump, the single largest
  call count in the PR-1 profile;
* foreign requests/diffs that raced an inbound home transfer
  (:class:`KeyedFifo`, one per engine) — drained wholesale when the
  transfer lands.

Both containers preserve the exact service order of the flat-list code
they replace: requests become eligible in FIFO (arrival) order among the
eligible set, which is what the determinism invariant (same event order,
same :class:`~repro.cluster.stats.ClusterStats`) requires.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from typing import Any, Iterator


class VersionIndexedQueue:
    """Deferred requests indexed by the version they wait for.

    A min-heap keyed on ``(min_version, arrival_seq)``: when the home
    copy's version bumps to ``v``, :meth:`pop_ready` pops exactly the
    newly-eligible requests (``min_version <= v``) in O(k log n) instead
    of rescanning all n pending requests, and returns them in arrival
    order so service order matches the historical full-scan behaviour.
    """

    __slots__ = ("_heap", "_seq")

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, Any]] = []
        self._seq = 0

    def push(self, min_version: int, item: Any) -> None:
        """Defer ``item`` until the version reaches ``min_version``."""
        heappush(self._heap, (min_version, self._seq, item))
        self._seq += 1

    def pop_ready(self, version: int) -> list[Any]:
        """Remove and return every item with ``min_version <= version``,
        in arrival order."""
        heap = self._heap
        if not heap or heap[0][0] > version:
            return []
        ready: list[tuple[int, int, Any]] = []
        while heap and heap[0][0] <= version:
            ready.append(heappop(heap))
        ready.sort(key=lambda entry: entry[1])
        return [item for _version, _seq, item in ready]

    def drain(self) -> list[Any]:
        """Remove and return everything, in arrival order (used when the
        home migrates away and all parked requests must chase it)."""
        items = sorted(self._heap, key=lambda entry: entry[1])
        self._heap.clear()
        return [item for _version, _seq, item in items]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def __iter__(self) -> Iterator[Any]:
        """Iterate items in arrival order (inspection/tests only)."""
        return iter(
            item
            for _version, _seq, item in sorted(
                self._heap, key=lambda entry: entry[1]
            )
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<VersionIndexedQueue pending={len(self._heap)}>"


class KeyedFifo:
    """Per-key FIFO queues for work parked until a key-event occurs.

    Used for foreign requests and diffs that arrived while the home
    transfer for their object was still in flight: ``add`` parks in O(1),
    ``pop_all`` hands the whole queue back in arrival order and forgets
    the key.  Empty keys are never retained, so truthiness means "some
    work is parked somewhere".
    """

    __slots__ = ("_by_key",)

    def __init__(self) -> None:
        self._by_key: dict[Any, deque[Any]] = {}

    def add(self, key: Any, item: Any) -> None:
        """Park ``item`` under ``key`` (FIFO within the key)."""
        queue = self._by_key.get(key)
        if queue is None:
            queue = self._by_key[key] = deque()
        queue.append(item)

    def pop_all(self, key: Any) -> list[Any]:
        """Remove and return everything parked under ``key``, in order."""
        queue = self._by_key.pop(key, None)
        return [] if queue is None else list(queue)

    def prune_empty(self) -> int:
        """Drop keys whose queue is empty; return how many were dropped.

        ``add``/``pop_all`` never leave empty queues behind, but callers
        holding a queue reference could drain one in place; the
        barrier-epoch GC calls this so the invariant "truthiness means
        parked work" survives such use and the key map cannot accrete.
        """
        empty = [key for key, queue in self._by_key.items() if not queue]
        for key in empty:
            del self._by_key[key]
        return len(empty)

    def __len__(self) -> int:
        return sum(len(queue) for queue in self._by_key.values())

    def __bool__(self) -> bool:
        return bool(self._by_key)

    def __contains__(self, key: Any) -> bool:
        return key in self._by_key

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<KeyedFifo keys={len(self._by_key)} items={len(self)}>"


def new_version_queue() -> Any:
    """Return a version-indexed queue from the active backend.

    The compiled kernel ships C twins of both containers with the same
    pop ordering (the ``(min_version, seq)`` key set is totally ordered,
    so heap extraction order is implementation-independent).  Resolution
    happens per call, not at import, so ``select_backend()`` switches
    take effect for queues created afterwards.
    """
    from repro import _kernel

    kernel_module = _kernel.kernel()
    if kernel_module is not None:
        return kernel_module.VersionIndexedQueue()
    return VersionIndexedQueue()


def new_keyed_fifo() -> Any:
    """Return a keyed FIFO from the active backend (see
    :func:`new_version_queue`)."""
    from repro import _kernel

    kernel_module = _kernel.kernel()
    if kernel_module is not None:
        return kernel_module.KeyedFifo()
    return KeyedFifo()
