"""Home-side per-object state.

The home copy is always valid (the defining asymmetry of home-based
protocols).  Besides the payload and version counter, the home keeps the
:class:`~repro.core.state.ObjectAccessState` monitor that feeds the
migration policy; on migration the whole :class:`HomeEntry` (payload copy,
version, monitor state) is shipped to the new home, so the feedback loop
continues seamlessly.

Home-access trapping (§3.3): rather than literally write-protecting the
home copy, we record at most one home read and one home write per local
synchronization interval (the interval counter bumps at every acquire and
barrier resume) — exactly the fault stream the real system traps, because
the copy is re-protected at each release/acquire.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.state import ObjectAccessState
from repro.dsm.pending import VersionIndexedQueue, new_version_queue


@dataclass(slots=True)
class HomeEntry:
    """The home replica of one object plus its access monitor."""

    payload: np.ndarray
    version: int
    state: ObjectAccessState

    #: Local interval ids of the last trapped home read / home write
    #: (-1 = never); used to trap at most one fault per interval.
    read_interval: int = -1
    write_interval: int = -1

    #: Requests deferred because the entry has not yet reached the
    #: requester's required version (safety net; see protocol notes),
    #: indexed by that version so a bump pops only newly-eligible ones.
    pending: VersionIndexedQueue = field(default_factory=new_version_queue)

    def trap_home_read(self, interval: int) -> bool:
        """Record a home read fault once per interval; True if trapped now."""
        if self.read_interval == interval:
            return False
        self.read_interval = interval
        self.state.record_home_read()
        return True

    def trap_home_write(self, interval: int) -> tuple[bool, bool]:
        """Record a home write fault once per interval.

        Returns ``(trapped_now, exclusive)`` where ``exclusive`` reflects
        the paper's exclusive-home-write positive feedback (only meaningful
        when ``trapped_now``).
        """
        if self.write_interval == interval:
            return False, False
        self.write_interval = interval
        exclusive = self.state.record_home_write()
        return True, exclusive
