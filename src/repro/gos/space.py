"""The Global Object Space: one simulated cluster-wide object heap."""

from __future__ import annotations

from repro.cluster.hockney import HockneyModel
from repro.cluster.network import Network
from repro.cluster.stats import ClusterStats
from repro.core.policies import MigrationPolicy, NoMigration
from repro.dsm.barrier import BarrierHandle
from repro.dsm.locks import LockHandle
from repro.dsm.protocol import DsmEngine
from repro.dsm.redirection import (
    ForwardingPointerMechanism,
    NotificationMechanism,
)
from repro.memory.arena import Arena, new_arena
from repro.memory.heap import ObjectHeap
from repro.memory.objects import SharedObject
from repro.obs.spans import SpanTracer
from repro.sim.engine import make_simulator

import numpy as np


class GlobalObjectSpace:
    """Builds and owns the whole simulated DSM machine.

    One instance = one cluster: the simulator, the network, one
    :class:`~repro.dsm.protocol.DsmEngine` per node, and the object heap.
    Applications allocate objects, locks and barriers through it; threads
    access them through :class:`~repro.gos.thread.ThreadContext`.
    """

    def __init__(
        self,
        nnodes: int,
        comm_model: HockneyModel,
        policy: MigrationPolicy | None = None,
        mechanism: NotificationMechanism | None = None,
        service_us: float | None = None,
        tracer=None,
        lock_discipline: str = "fifo",
        seed: int = 0,
        metrics=None,
        logger=None,
        gc_enabled: bool = True,
        topology=None,
        release_fanout: int | None = None,
    ):
        self.sim = make_simulator()
        self.stats = ClusterStats()
        self.policy = policy if policy is not None else NoMigration()
        self.mechanism = (
            mechanism if mechanism is not None else ForwardingPointerMechanism()
        )
        self.tracer = tracer
        #: Causal span layer: one shared :class:`~repro.obs.spans.SpanTracer`
        #: makes op ids run-unique across all engines.  It disables itself
        #: unless the tracer captures both span kinds, so a
        #: ``kinds=("migration",)`` recorder (e.g. the determinism digest)
        #: pays one cached ``None`` check per operation.
        self.spans = SpanTracer(tracer) if tracer is not None else None
        #: Optional :class:`~repro.obs.metrics.MetricsRegistry` shared by the
        #: network and every engine; ``None`` keeps the hot path bare.
        self.metrics = metrics
        #: Optional :class:`~repro.obs.logging.RunLogger` for the engines.
        self.logger = logger
        #: Opt-in interconnect topology (PROTOCOL.md §15) — a
        #: :class:`~repro.cluster.topology.ClusterTopology`, spec string
        #: or dict; ``None`` keeps the seed's ideal single switch.
        self.network = Network(
            self.sim, comm_model, nnodes, self.stats, service_us=service_us,
            metrics=metrics, topology=topology,
        )
        self.heap = ObjectHeap()
        #: One arena per node, shared across engines so reply payload
        #: copies are carved from the *receiving* node's pool (the
        #: free/reuse cycle then closes inside each node; see
        #: :class:`~repro.memory.arena.Arena`).
        self.arenas = [new_arena(label=f"node{i}") for i in range(nnodes)]
        self.gc_enabled = gc_enabled
        engine_logger = (
            logger.child(clock=lambda: self.sim.now)
            if logger is not None
            else None
        )
        self.engines = [
            DsmEngine(
                node_id=i,
                sim=self.sim,
                network=self.network,
                heap=self.heap,
                stats=self.stats,
                policy=self.policy,
                mechanism=self.mechanism,
                tracer=tracer,
                lock_discipline=lock_discipline,
                seed=seed,
                metrics=metrics,
                logger=engine_logger,
                arenas=self.arenas,
                gc_enabled=gc_enabled,
                spans=self.spans,
                release_fanout=release_fanout,
            )
            for i in range(nnodes)
        ]
        self._next_lock_id = 1
        self._next_barrier_id = 1

    @property
    def nnodes(self) -> int:
        return self.network.nnodes

    # -- allocation ---------------------------------------------------------

    def alloc_array(
        self,
        length: int,
        dtype: str = "float64",
        home: int = 0,
        label: str = "",
        meta=None,
    ) -> SharedObject:
        """Allocate a shared array object initially homed at ``home``."""
        obj = self.heap.alloc_array(length, dtype, home=home, label=label, meta=meta)
        self.engines[home].install_initial_home(obj.oid)
        return obj

    def alloc_fields(
        self,
        fields,
        dtype: str = "float64",
        home: int = 0,
        label: str = "",
        meta=None,
    ) -> SharedObject:
        """Allocate a shared fields object initially homed at ``home``."""
        obj = self.heap.alloc_fields(fields, dtype, home=home, label=label, meta=meta)
        self.engines[home].install_initial_home(obj.oid)
        return obj

    def alloc_lock(self, home: int = 0) -> LockHandle:
        """Allocate a distributed lock managed at node ``home``."""
        handle = LockHandle(lock_id=self._next_lock_id, home=home)
        self._next_lock_id += 1
        return handle

    def alloc_barrier(self, parties: int, home: int = 0) -> BarrierHandle:
        """Allocate a barrier for ``parties`` threads, managed at ``home``."""
        handle = BarrierHandle(
            barrier_id=self._next_barrier_id, home=home, parties=parties
        )
        self._next_barrier_id += 1
        self.engines[home].register_barrier(handle)
        return handle

    # -- global (simulation-level) accessors ---------------------------------

    def current_home(self, obj: SharedObject) -> int:
        """The node currently homing ``obj`` (simulation-level view)."""
        for engine in self.engines:
            if obj.oid in engine.homes:
                return engine.node_id
        raise RuntimeError(f"object {obj!r} has no home (transfer in flight?)")

    def read_global(self, obj: SharedObject) -> np.ndarray:
        """Copy of the authoritative (home) payload — for verification only.

        Only meaningful once the simulation is quiescent; the harness uses
        it to check application results against sequential oracles.
        """
        return self.engines[self.current_home(obj)].homes[obj.oid].payload.copy()

    def write_global(self, obj: SharedObject, values: np.ndarray) -> None:
        """Initialise the home payload directly — for pre-run setup only.

        Models the application's sequential initialisation phase without
        charging DSM traffic for it (the paper measures the parallel
        phase; objects "exhibit the single-writer access pattern *after*
        they are initialized", §5.1).
        """
        payload = self.engines[self.current_home(obj)].homes[obj.oid].payload
        payload[:] = values

    def migration_count(self) -> int:
        """Total home migrations performed so far."""
        return self.stats.events.get("migration", 0)

    def protocol_memory_estimate(self) -> dict:
        """Estimated protocol metadata footprint in bytes, per concern.

        Models the paper's §5 containment claim: the adaptive protocol's
        extra memory — the per-object monitor counters (threshold,
        consecutive writes, redirections, exclusive home writes) — exists
        only for objects that actually have a home entry, plus one word
        per forwarding pointer left behind by migrations.  Cached copies
        are the data cost any DSM pays and are reported separately.
        """
        MONITOR_BYTES = 48  # T, C+writer, E, R, diff-EWMA, counters
        POINTER_BYTES = 8
        monitor = 0
        forwards = 0
        cache_payload = 0
        for engine in self.engines:
            monitor += MONITOR_BYTES * len(engine.homes)
            forwards += POINTER_BYTES * len(engine.forwards)
            cache_payload += sum(
                entry.payload.nbytes for entry in engine.cache.values()
            )
        return {
            "monitor_bytes": monitor,
            "forwarding_bytes": forwards,
            "cache_payload_bytes": cache_payload,
        }

    def memory_footprint(self) -> dict:
        """Cluster-wide memory-engine snapshot (arena + GC + cache state).

        Everything the memory tier reports: summed arena accounting,
        live protocol state sizes, and the heap's payload denominator
        (one full replica set costs ``heap_data_bytes``).  Pure
        introspection — reading it changes nothing.
        """
        arena_totals = {
            "slabs": 0,
            "slab_bytes": 0,
            "carves": 0,
            "reuses": 0,
            "frees": 0,
            "live_bytes": 0,
            "pooled_bytes": 0,
            "pooled_buffers": 0,
            "scratch_bytes": 0,
        }
        for arena in self.arenas:
            snap = arena.stats()
            for key in arena_totals:
                arena_totals[key] += snap[key]
        cache_entries = 0
        cache_payload = 0
        notice_floors = 0
        gc_cache_drops = 0
        gc_notice_prunes = 0
        for engine in self.engines:
            cache_entries += len(engine.cache)
            cache_payload += sum(
                entry.payload.nbytes for entry in engine.cache.values()
            )
            notice_floors += len(engine.required_version)
            gc_cache_drops += engine.gc_cache_drops
            gc_notice_prunes += engine.gc_notice_prunes
        return {
            "arena": arena_totals,
            "cache_entries": cache_entries,
            "cache_payload_bytes": cache_payload,
            "notice_floors": notice_floors,
            "gc_cache_drops": gc_cache_drops,
            "gc_notice_prunes": gc_notice_prunes,
            "gc_enabled": self.gc_enabled,
            "heap_data_bytes": self.heap.total_data_bytes(),
            "peaks": self.stats.memory_snapshot(),
        }
