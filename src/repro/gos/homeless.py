"""A GlobalObjectSpace-compatible cluster running the homeless protocol.

Lets the same applications and :class:`~repro.gos.jvm.DistributedJVM`
machinery run on the TreadMarks-style baseline
(:class:`~repro.dsm.homeless.HomelessEngine`) for the home-based vs
homeless ablation.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.hockney import HockneyModel
from repro.cluster.message import MsgCategory
from repro.cluster.network import Network
from repro.cluster.stats import ClusterStats
from repro.dsm.barrier import BarrierHandle
from repro.dsm.homeless import HomelessEngine
from repro.dsm.locks import LockHandle
from repro.memory.arena import Arena, new_arena
from repro.memory.heap import ObjectHeap
from repro.memory.objects import SharedObject
from repro.sim.engine import make_simulator


class HomelessObjectSpace:
    """Drop-in replacement for GlobalObjectSpace backed by HomelessEngine."""

    def __init__(
        self,
        nnodes: int,
        comm_model: HockneyModel,
        service_us: float | None = None,
        gc_threshold_bytes: int | None = None,
    ):
        self.sim = make_simulator()
        self.stats = ClusterStats()
        self.network = Network(
            self.sim, comm_model, nnodes, self.stats, service_us=service_us
        )
        self.heap = ObjectHeap()
        self.arenas = [new_arena(label=f"hl-node{i}") for i in range(nnodes)]
        self.engines = [
            HomelessEngine(
                node_id=i,
                sim=self.sim,
                network=self.network,
                heap=self.heap,
                stats=self.stats,
                arena=self.arenas[i],
            )
            for i in range(nnodes)
        ]
        #: Cluster-wide retained-diff budget; exceeded => global GC at the
        #: next barrier (TreadMarks-style; None disables collection).
        self.gc_threshold_bytes = gc_threshold_bytes
        if gc_threshold_bytes is not None:
            if gc_threshold_bytes <= 0:
                raise ValueError(
                    f"gc threshold must be positive, got {gc_threshold_bytes}"
                )
            for engine in self.engines:
                engine.on_barrier_complete = self._maybe_gc
        self._next_lock_id = 1
        self._next_barrier_id = 1

    @property
    def nnodes(self) -> int:
        return self.network.nnodes

    def alloc_array(
        self, length, dtype="float64", home=0, label="", meta=None
    ) -> SharedObject:
        # `home` is recorded (for API parity) but unused: no homes here.
        return self.heap.alloc_array(length, dtype, home=home, label=label, meta=meta)

    def alloc_fields(
        self, fields, dtype="float64", home=0, label="", meta=None
    ) -> SharedObject:
        return self.heap.alloc_fields(fields, dtype, home=home, label=label, meta=meta)

    def alloc_lock(self, home: int = 0) -> LockHandle:
        handle = LockHandle(lock_id=self._next_lock_id, home=home)
        self._next_lock_id += 1
        return handle

    def alloc_barrier(self, parties: int, home: int = 0) -> BarrierHandle:
        handle = BarrierHandle(
            barrier_id=self._next_barrier_id, home=home, parties=parties
        )
        self._next_barrier_id += 1
        self.engines[home].register_barrier(handle)
        return handle

    def write_global(self, obj: SharedObject, values: np.ndarray) -> None:
        """Set the shared initial image every node starts from."""
        payload = obj.new_payload()
        payload[:] = values
        self.heap.initial_values[obj.oid] = payload

    def read_global(self, obj: SharedObject) -> np.ndarray:
        """Authoritative final state: initial image + every retained diff,
        applied in causal (flush-stamp) order — for verification only."""
        payload = obj.new_payload()
        initial = self.heap.initial_values.get(obj.oid)
        if initial is not None:
            payload[:] = initial
        stamped = []
        for engine in self.engines:
            for item in engine.history.get(obj.oid, []):
                stamped.append((item.stamp, engine.node_id, item.seq, item.diff))
        for _stamp, _writer, _seq, diff in sorted(
            stamped, key=lambda t: (t[0], t[1], t[2])
        ):
            from repro.memory.diff import apply_diff

            apply_diff(payload, diff)
        return payload

    def retained_diff_bytes(self) -> int:
        """Bytes of diffs currently held across all writers."""
        return sum(engine.retained_bytes for engine in self.engines)

    def _maybe_gc(self) -> None:
        if (
            self.gc_threshold_bytes is None
            or self.retained_diff_bytes() <= self.gc_threshold_bytes
        ):
            return
        self.gc()

    def gc(self) -> None:
        """Global diff garbage collection (TreadMarks-style, §1's cost).

        Runs at a barrier safe point (every thread has flushed, so no twin
        is live).  Consolidates each written object's diffs into a new
        shared base image, clears all histories/applied/required state,
        and charges the traffic: each writer ships its retained diffs to
        the coordinator, which ships rebased images to every node holding
        a replica of a collected object.
        """
        from repro.dsm.homeless import _GcTraffic

        self.stats.incr("homeless_gc")
        written_oids = sorted(
            {oid for engine in self.engines for oid in engine.history}
        )
        coordinator = 0
        # phase 1: contribute retained diffs to the coordinator
        for engine in self.engines:
            if engine.node_id != coordinator and engine.retained_bytes:
                self.network.send(
                    engine.node_id,
                    coordinator,
                    MsgCategory.CONTROL,
                    engine.retained_bytes,
                    _GcTraffic(phase="contribute"),
                )
        # consolidate: new base image per written object
        rebased = {}
        for oid in written_oids:
            obj = self.heap.get(oid)
            rebased[oid] = self.read_global(obj)
        # phase 2: rebase every node
        for engine in self.engines:
            rebase_bytes = 0
            for oid in written_oids:
                replica = engine.replicas.get(oid)
                if replica is not None:
                    if replica.twin is not None:
                        raise RuntimeError(
                            "global GC outside a safe point: node "
                            f"{engine.node_id} has a dirty twin for {oid}"
                        )
                    replica.payload[:] = rebased[oid]
                    replica.applied.clear()
                    rebase_bytes += self.heap.get(oid).size_bytes
                engine.history.pop(oid, None)
                for key in [
                    k for k in engine.required if k[0] == oid
                ]:
                    del engine.required[key]
            engine.retained_bytes = 0
            if engine.node_id != coordinator and rebase_bytes:
                self.network.send(
                    coordinator,
                    engine.node_id,
                    MsgCategory.CONTROL,
                    rebase_bytes,
                    _GcTraffic(phase="rebase"),
                )
        # the consolidated images become the shared epoch base every
        # later materialisation starts from
        for oid, image in rebased.items():
            self.heap.initial_values[oid] = image

    def migration_count(self) -> int:
        return 0  # no homes, no migrations
