"""Global Object Space: the distributed-JVM-facing layer.

The GOS "virtualizes a single Java object heap spanning the entire
cluster" (§1).  This package provides:

* :class:`~repro.gos.space.GlobalObjectSpace` — object/lock/barrier
  allocation with the paper's home assignment defaults (creation node is
  the default home; large array collections are distributed round-robin);
* :class:`~repro.gos.thread.ThreadContext` — the API simulated Java
  threads program against (object read/write, field access, synchronized
  sections, barriers, compute charging);
* :class:`~repro.gos.jvm.DistributedJVM` — one-call construction of the
  whole simulated machine and execution of a DSM application.
"""

from repro.gos.distribution import round_robin_homes
from repro.gos.jvm import DistributedJVM, RunResult
from repro.gos.space import GlobalObjectSpace
from repro.gos.thread import ThreadContext

__all__ = [
    "DistributedJVM",
    "GlobalObjectSpace",
    "RunResult",
    "ThreadContext",
    "round_robin_homes",
]
