"""DistributedJVM: build the simulated machine, run an application.

Mirrors the paper's execution model (§5): "A Java application is started
in one cluster node.  When a Java thread is created, it is automatically
dispatched to a free cluster node" — thread placement defaults to
``tid -> node tid % nnodes`` and can be overridden by the application
(the synthetic benchmark places its workers on nodes other than node 0).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, TYPE_CHECKING

from repro.cluster.hockney import HockneyModel
from repro.cluster.stats import ClusterStats
from repro.core.policies import MigrationPolicy, NoMigration
from repro.dsm.redirection import (
    ForwardingPointerMechanism,
    NotificationMechanism,
)
from repro.gos.space import GlobalObjectSpace
from repro.gos.thread import ThreadContext

if TYPE_CHECKING:  # pragma: no cover
    from repro.apps.base import DsmApplication


@dataclass
class RunResult:
    """Everything one run produced: timing, traffic, and application output."""

    app_name: str
    policy_name: str
    mechanism_name: str
    nnodes: int
    nthreads: int
    execution_time_us: float
    stats: ClusterStats
    output: Any = None
    gos: GlobalObjectSpace = field(repr=False, default=None)

    @property
    def execution_time_s(self) -> float:
        return self.execution_time_us / 1e6

    @property
    def migrations(self) -> int:
        return self.stats.events.get("migration", 0)

    def summary(self) -> dict:
        """Stable plain-dict summary used by the bench harness and tests."""
        return {
            "app": self.app_name,
            "policy": self.policy_name,
            "mechanism": self.mechanism_name,
            "nodes": self.nnodes,
            "threads": self.nthreads,
            "time_us": self.execution_time_us,
            "messages": self.stats.total_messages(),
            "data_messages": self.stats.data_messages(),
            "bytes": self.stats.total_bytes(),
            "data_bytes": self.stats.data_bytes(),
            "migrations": self.migrations,
            "breakdown": self.stats.breakdown(),
        }


class DistributedJVM:
    """One-call façade: configure the cluster once, run applications."""

    def __init__(
        self,
        nodes: int,
        comm_model: HockneyModel,
        policy: MigrationPolicy | None = None,
        mechanism: NotificationMechanism | None = None,
        service_us: float | None = None,
        protocol: str = "home-based",
        tracer=None,
        lock_discipline: str = "fifo",
        seed: int = 0,
        metrics=None,
        logger=None,
        heartbeat_events: int | None = None,
        gc_enabled: bool = True,
        topology=None,
        release_fanout: int | None = None,
    ):
        if nodes < 1:
            raise ValueError(f"need at least one node, got {nodes}")
        if protocol not in ("home-based", "homeless"):
            raise ValueError(
                f"protocol must be 'home-based' or 'homeless', got {protocol!r}"
            )
        if heartbeat_events is not None and heartbeat_events < 1:
            raise ValueError(
                f"heartbeat_events must be >= 1, got {heartbeat_events}"
            )
        self.nodes = nodes
        self.comm_model = comm_model
        self.policy = policy if policy is not None else NoMigration()
        self.mechanism = (
            mechanism if mechanism is not None else ForwardingPointerMechanism()
        )
        self.service_us = service_us
        self.protocol = protocol
        self.tracer = tracer
        self.lock_discipline = lock_discipline
        self.seed = seed
        #: Optional :class:`~repro.obs.metrics.MetricsRegistry` threaded
        #: into the network and engines of every home-based run.
        self.metrics = metrics
        #: Optional :class:`~repro.obs.logging.RunLogger`.
        self.logger = logger
        #: When set, :meth:`run` installs a simulator heartbeat logging an
        #: ``info``-level progress line every this many processed events.
        self.heartbeat_events = heartbeat_events
        #: Barrier-epoch memory GC in the home-based engines (``--no-gc``
        #: escape hatch turns it off; results are identical either way,
        #: only the memory footprint differs).
        self.gc_enabled = gc_enabled
        #: Opt-in interconnect topology (spec string, dict or
        #: :class:`~repro.cluster.topology.ClusterTopology`); ``None``
        #: keeps the seed's ideal single switch (PROTOCOL.md §15).
        self.topology = topology
        #: Opt-in k-ary multicast relay for barrier releases; ``None``
        #: keeps the legacy direct burst.
        self.release_fanout = release_fanout

    def run(
        self, app: "DsmApplication", nthreads: int | None = None
    ) -> RunResult:
        """Execute ``app`` on a freshly built cluster; verify its output.

        Each run constructs a new :class:`GlobalObjectSpace` (fresh
        simulator, network, heap, engines), so runs are independent and
        deterministic.
        """
        threads = nthreads if nthreads is not None else app.default_threads(self.nodes)
        if threads < 1:
            raise ValueError(f"need at least one thread, got {threads}")
        if self.protocol == "homeless":
            from repro.gos.homeless import HomelessObjectSpace

            gos = HomelessObjectSpace(
                nnodes=self.nodes,
                comm_model=self.comm_model,
                service_us=self.service_us,
            )
        else:
            gos = GlobalObjectSpace(
                nnodes=self.nodes,
                comm_model=self.comm_model,
                policy=self.policy,
                mechanism=self.mechanism,
                service_us=self.service_us,
                tracer=self.tracer,
                lock_discipline=self.lock_discipline,
                seed=self.seed,
                metrics=self.metrics,
                logger=self.logger,
                gc_enabled=self.gc_enabled,
                topology=self.topology,
                release_fanout=self.release_fanout,
            )
        log = self.logger
        log_info = log is not None and log.enabled_for("info")
        if log_info:
            log.info(
                "run_start",
                app=app.name,
                protocol=self.protocol,
                nodes=self.nodes,
                threads=threads,
            )
        if self.heartbeat_events is not None and log_info:
            gos.sim.set_heartbeat(
                self.heartbeat_events,
                lambda sim: log.info(
                    "heartbeat",
                    events=sim.events_processed,
                    sim_us=sim.now,
                ),
            )
        app.setup(gos, threads)
        processes = []
        for tid in range(threads):
            node = app.placement(tid, self.nodes, threads)
            ctx = ThreadContext(gos, tid, node)
            processes.append(
                gos.sim.spawn(app.thread_body(ctx, tid), name=f"{app.name}-t{tid}")
            )
        try:
            execution_time = gos.sim.run()
        except Exception:
            # a thread failure often surfaces as a deadlock of its peers;
            # report the root cause instead
            for process in processes:
                if process.done and process.finished.exception is not None:
                    raise process.finished.exception from None
            raise
        for process in processes:
            if process.finished.exception is not None:
                raise process.finished.exception
        output = app.finalize(gos)
        if log_info:
            log.info(
                "run_end",
                app=app.name,
                sim_time_us=execution_time,
                events=gos.sim.events_processed,
                messages=gos.stats.total_messages(),
                migrations=gos.stats.events.get("migration", 0),
            )
        # A bounded TraceRecorder that evicted span events has broken
        # causal trees: never let that pass silently.
        dropped_spans = getattr(self.tracer, "dropped_spans", 0)
        if dropped_spans:
            if log is not None:
                log.warning(
                    "dropped_spans",
                    app=app.name,
                    dropped_spans=dropped_spans,
                    dropped_total=getattr(self.tracer, "dropped", 0),
                )
            else:  # no logger: fall back to a stdlib warning
                import warnings

                warnings.warn(
                    f"trace recorder dropped {dropped_spans} span events "
                    f"(max_events too small); causal trees are incomplete",
                    RuntimeWarning,
                    stacklevel=2,
                )
        return RunResult(
            app_name=app.name,
            policy_name=(
                "HOMELESS" if self.protocol == "homeless" else self.policy.name
            ),
            mechanism_name=self.mechanism.name,
            nnodes=self.nodes,
            nthreads=threads,
            execution_time_us=execution_time,
            stats=gos.stats,
            output=output,
            gos=gos,
        )
