"""Home assignment rules of the paper's GOS (§5).

"When an object is created, the creation node becomes its default home
node.  Exceptionally, we distribute the homes of large objects, such as
array objects, among the nodes in a round-robin fashion in order to
achieve load balance."
"""

from __future__ import annotations

from typing import Iterator


def round_robin_homes(count: int, nnodes: int, start: int = 0) -> Iterator[int]:
    """Yield ``count`` home node ids cycling over the cluster.

    This is the initial placement used for the rows of the ASP/SOR
    matrices: load-balanced, but — crucially for the paper's story —
    generally *not* on the node that will write them, which is what home
    migration then repairs at runtime.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if nnodes < 1:
        raise ValueError(f"need at least one node, got {nnodes}")
    if not 0 <= start < nnodes:
        raise ValueError(f"start node {start} outside cluster of {nnodes}")
    for i in range(count):
        yield (start + i) % nnodes


def block_owner(index: int, total: int, nthreads: int) -> int:
    """The thread owning item ``index`` under contiguous block partitioning.

    Used by the applications to split rows/bodies among threads the way
    the paper's Java programs do (each thread works on a contiguous
    block).
    """
    if not 0 <= index < total:
        raise ValueError(f"index {index} outside [0, {total})")
    if nthreads < 1:
        raise ValueError(f"need at least one thread, got {nthreads}")
    base = total // nthreads
    extra = total % nthreads
    # First `extra` threads own (base+1) items.
    boundary = extra * (base + 1)
    if index < boundary:
        return index // (base + 1)
    return extra + (index - boundary) // base


def block_range(tid: int, total: int, nthreads: int) -> range:
    """The contiguous index range owned by thread ``tid``."""
    if not 0 <= tid < nthreads:
        raise ValueError(f"tid {tid} outside [0, {nthreads})")
    base = total // nthreads
    extra = total % nthreads
    if tid < extra:
        start = tid * (base + 1)
        return range(start, start + base + 1)
    start = extra * (base + 1) + (tid - extra) * base
    return range(start, start + base)
