"""ThreadContext: the API simulated Java threads program against.

All blocking methods are generators; application thread bodies are
generator functions that compose them with ``yield from``::

    def body(ctx, tid):
        yield from ctx.acquire(lock)
        counter = yield from ctx.write(counter_obj)
        counter[0] += 1
        yield from ctx.release(lock)
        yield from ctx.barrier()

Element-level mutation happens directly on the returned numpy payload —
protocol-equivalent under LRC because access states only change at
synchronization points (DESIGN.md, decision 2).
"""

from __future__ import annotations

from typing import Any, Generator, TYPE_CHECKING

import numpy as np

from repro import _kernel
from repro.dsm.barrier import BarrierHandle
from repro.dsm.locks import LockHandle
from repro.memory.objects import FieldsSpec, SharedObject
from repro.sim.process import Delay

if TYPE_CHECKING:  # pragma: no cover
    from repro.gos.space import GlobalObjectSpace


class _PyReady:
    """Pure-Python twin of the kernel ``Ready`` iterator.

    A single-use iterable whose iteration immediately ends with the given
    value: ``yield from _PyReady(x)`` evaluates to ``x`` without ever
    suspending.  Replaces generator-frame creation on local-hit accesses.
    """

    __slots__ = ("_value",)

    def __init__(self, value):
        self._value = value

    def __iter__(self):
        return self

    def __next__(self):
        value = self._value
        if value is None:
            raise StopIteration
        self._value = None
        raise StopIteration(value)


class ThreadContext:
    """One simulated application thread pinned to one cluster node."""

    def __init__(self, gos: "GlobalObjectSpace", tid: int, node: int):
        if not 0 <= node < gos.nnodes:
            raise ValueError(f"thread {tid} placed on node {node} outside cluster")
        self.gos = gos
        self.tid = tid
        self.node = node
        self.engine = gos.engines[node]
        self._barrier_rounds: dict[int, int] = {}
        kernel_module = _kernel.kernel()
        self._ready = (
            kernel_module.Ready if kernel_module is not None else _PyReady
        )
        # Hot-path pre-binds: the local-access shadows are installed on
        # the engine at construction and never rebound afterwards, so one
        # attribute resolution here replaces two per access.
        self._try_read = self.engine.try_read_local
        self._try_write = self.engine.try_write_local
        self._miss_read = self.engine.read
        self._miss_write = self.engine.write
        # When the engine carries a kernel LocalAccess, the whole
        # read/write wrapper collapses into one C call (instance
        # attributes shadow the class methods below; same probe, same
        # miss generator, same Ready iterator — no Python frame).
        local_access = getattr(self.engine, "_local_access", None)
        if kernel_module is not None and isinstance(
            local_access, kernel_module.LocalAccess
        ):
            accessor = kernel_module.Accessor(
                local_access, self._miss_read, self._miss_write
            )
            self.read = accessor.read
            self.write = accessor.write

    # -- object access --------------------------------------------------

    def read(self, obj: SharedObject) -> Generator[Any, Any, np.ndarray]:
        """Readable payload of ``obj`` (may fault in from the home)."""
        # Local hits (home copy or valid cached copy) resolve without a
        # generator frame: the Ready iterator finishes immediately under
        # ``yield from``.  The protocol generator is only built when
        # communication is actually needed.  Same side effects either way.
        payload = self._try_read(obj.oid)
        if payload is None:
            return self._miss_read(obj.oid)
        return self._ready(payload)

    def write(self, obj: SharedObject) -> Generator[Any, Any, np.ndarray]:
        """Writable payload of ``obj`` (faults, twins, or home-write traps)."""
        payload = self._try_write(obj.oid)
        if payload is None:
            return self._miss_write(obj.oid)
        return self._ready(payload)

    def read_many(
        self, objs: list[SharedObject]
    ) -> Generator[Any, Any, None]:
        """Prefetch readable copies of many objects with batched fault-ins
        (one message per home node — the GOS's object pushing, §5.1).
        Subsequent :meth:`read` calls in the same interval are local hits.
        """
        yield from self.engine.read_many([obj.oid for obj in objs])

    def get_field(
        self, obj: SharedObject, name: str
    ) -> Generator[Any, Any, float]:
        """Read one named field of a fields object."""
        payload = yield from self.read(obj)
        return float(payload[self._slot(obj, name)])

    def put_field(
        self, obj: SharedObject, name: str, value: float
    ) -> Generator[Any, Any, None]:
        """Write one named field of a fields object."""
        payload = yield from self.write(obj)
        payload[self._slot(obj, name)] = value

    @staticmethod
    def _slot(obj: SharedObject, name: str) -> int:
        if not isinstance(obj.spec, FieldsSpec):
            raise TypeError(f"{obj!r} is not a fields object")
        return obj.spec.slot(name)

    def ship(
        self,
        obj: SharedObject,
        fn,
        compute_us: float = 0.0,
        args_bytes: int = 8,
    ) -> Generator[Any, Any, Any]:
        """Synchronized method shipping: run ``fn(payload)`` at ``obj``'s
        home node instead of faulting the object here (§5.1's GOS
        optimization).  Call while holding the guarding lock; returns
        ``fn``'s result.  ``compute_us`` is the method's CPU cost, charged
        at the executing node."""
        result = yield from self.engine.ship(
            obj.oid, fn, compute_us=compute_us, args_bytes=args_bytes
        )
        return result

    # -- synchronization --------------------------------------------------

    def acquire(self, lock: LockHandle) -> Generator[Any, Any, None]:
        """Enter a synchronized section (Java monitorenter)."""
        yield from self.engine.acquire(lock)

    def release(self, lock: LockHandle) -> Generator[Any, Any, None]:
        """Leave a synchronized section: flush diffs, release the lock."""
        yield from self.engine.release(lock)

    def barrier(self, handle: BarrierHandle) -> Generator[Any, Any, None]:
        """One barrier episode; rounds are tracked per thread."""
        round_no = self._barrier_rounds.get(handle.barrier_id, 0)
        self._barrier_rounds[handle.barrier_id] = round_no + 1
        yield from self.engine.barrier(handle, round_no)

    # -- local work --------------------------------------------------------

    def compute(self, duration_us: float) -> Generator[Any, Any, None]:
        """Charge ``duration_us`` of local CPU time."""
        if duration_us > 0:
            yield Delay(duration_us)

    @property
    def now(self) -> float:
        """Current simulated time (microseconds)."""
        return self.gos.sim.now
