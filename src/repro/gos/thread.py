"""ThreadContext: the API simulated Java threads program against.

All blocking methods are generators; application thread bodies are
generator functions that compose them with ``yield from``::

    def body(ctx, tid):
        yield from ctx.acquire(lock)
        counter = yield from ctx.write(counter_obj)
        counter[0] += 1
        yield from ctx.release(lock)
        yield from ctx.barrier()

Element-level mutation happens directly on the returned numpy payload —
protocol-equivalent under LRC because access states only change at
synchronization points (DESIGN.md, decision 2).
"""

from __future__ import annotations

from typing import Any, Generator, TYPE_CHECKING

import numpy as np

from repro.dsm.barrier import BarrierHandle
from repro.dsm.locks import LockHandle
from repro.memory.objects import FieldsSpec, SharedObject
from repro.sim.process import Delay

if TYPE_CHECKING:  # pragma: no cover
    from repro.gos.space import GlobalObjectSpace


class ThreadContext:
    """One simulated application thread pinned to one cluster node."""

    def __init__(self, gos: "GlobalObjectSpace", tid: int, node: int):
        if not 0 <= node < gos.nnodes:
            raise ValueError(f"thread {tid} placed on node {node} outside cluster")
        self.gos = gos
        self.tid = tid
        self.node = node
        self.engine = gos.engines[node]
        self._barrier_rounds: dict[int, int] = {}

    # -- object access --------------------------------------------------

    def read(self, obj: SharedObject) -> Generator[Any, Any, np.ndarray]:
        """Readable payload of ``obj`` (may fault in from the home)."""
        # Local hits (home copy or valid cached copy) resolve as a plain
        # call; the protocol generator is only built when communication
        # is actually needed.  Same side effects either way.
        engine = self.engine
        payload = engine.try_read_local(obj.oid)
        if payload is None:
            payload = yield from engine.read(obj.oid)
        return payload

    def write(self, obj: SharedObject) -> Generator[Any, Any, np.ndarray]:
        """Writable payload of ``obj`` (faults, twins, or home-write traps)."""
        engine = self.engine
        payload = engine.try_write_local(obj.oid)
        if payload is None:
            payload = yield from engine.write(obj.oid)
        return payload

    def read_many(
        self, objs: list[SharedObject]
    ) -> Generator[Any, Any, None]:
        """Prefetch readable copies of many objects with batched fault-ins
        (one message per home node — the GOS's object pushing, §5.1).
        Subsequent :meth:`read` calls in the same interval are local hits.
        """
        yield from self.engine.read_many([obj.oid for obj in objs])

    def get_field(
        self, obj: SharedObject, name: str
    ) -> Generator[Any, Any, float]:
        """Read one named field of a fields object."""
        payload = yield from self.read(obj)
        return float(payload[self._slot(obj, name)])

    def put_field(
        self, obj: SharedObject, name: str, value: float
    ) -> Generator[Any, Any, None]:
        """Write one named field of a fields object."""
        payload = yield from self.write(obj)
        payload[self._slot(obj, name)] = value

    @staticmethod
    def _slot(obj: SharedObject, name: str) -> int:
        if not isinstance(obj.spec, FieldsSpec):
            raise TypeError(f"{obj!r} is not a fields object")
        return obj.spec.slot(name)

    def ship(
        self,
        obj: SharedObject,
        fn,
        compute_us: float = 0.0,
        args_bytes: int = 8,
    ) -> Generator[Any, Any, Any]:
        """Synchronized method shipping: run ``fn(payload)`` at ``obj``'s
        home node instead of faulting the object here (§5.1's GOS
        optimization).  Call while holding the guarding lock; returns
        ``fn``'s result.  ``compute_us`` is the method's CPU cost, charged
        at the executing node."""
        result = yield from self.engine.ship(
            obj.oid, fn, compute_us=compute_us, args_bytes=args_bytes
        )
        return result

    # -- synchronization --------------------------------------------------

    def acquire(self, lock: LockHandle) -> Generator[Any, Any, None]:
        """Enter a synchronized section (Java monitorenter)."""
        yield from self.engine.acquire(lock)

    def release(self, lock: LockHandle) -> Generator[Any, Any, None]:
        """Leave a synchronized section: flush diffs, release the lock."""
        yield from self.engine.release(lock)

    def barrier(self, handle: BarrierHandle) -> Generator[Any, Any, None]:
        """One barrier episode; rounds are tracked per thread."""
        round_no = self._barrier_rounds.get(handle.barrier_id, 0)
        self._barrier_rounds[handle.barrier_id] = round_no + 1
        yield from self.engine.barrier(handle, round_no)

    # -- local work --------------------------------------------------------

    def compute(self, duration_us: float) -> Generator[Any, Any, None]:
        """Charge ``duration_us`` of local CPU time."""
        if duration_us > 0:
            yield Delay(duration_us)

    @property
    def now(self) -> float:
        """Current simulated time (microseconds)."""
        return self.gos.sim.now
