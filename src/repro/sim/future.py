"""One-shot future values used as blocking points for simulated processes."""

from __future__ import annotations

from typing import Any, Callable

from repro.sim.errors import SimulationError

_UNSET = object()


class Future:
    """A value that becomes available at some simulated time.

    A process blocks on a future by yielding it; the engine resumes the
    process with the resolved value.  Non-process code can attach callbacks
    with :meth:`add_done_callback`.

    Futures are single-assignment: resolving twice raises
    :class:`~repro.sim.errors.SimulationError`.
    """

    __slots__ = ("_value", "_exception", "_callbacks", "label")

    def __init__(self, label: str = ""):
        self._value: Any = _UNSET
        self._exception: BaseException | None = None
        # Lazily allocated: most futures get zero or one callback, and
        # tens of thousands are created per run.
        self._callbacks: list[Callable[[Future], None]] | None = None
        self.label = label

    @property
    def resolved(self) -> bool:
        """Whether the future holds a value or an exception."""
        return self._value is not _UNSET or self._exception is not None

    @property
    def value(self) -> Any:
        """The resolved value; raises if unresolved or resolved to an error."""
        if self._exception is not None:
            raise self._exception
        if self._value is _UNSET:
            raise SimulationError(f"future {self.label!r} read before resolution")
        return self._value

    @property
    def exception(self) -> BaseException | None:
        """The exception this future was failed with, if any."""
        return self._exception

    def resolve(self, value: Any = None) -> None:
        """Provide the value and fire callbacks (in registration order)."""
        if self.resolved:
            raise SimulationError(f"future {self.label!r} resolved twice")
        self._value = value
        self._fire()

    def fail(self, exc: BaseException) -> None:
        """Resolve the future with an exception instead of a value."""
        if self.resolved:
            raise SimulationError(f"future {self.label!r} resolved twice")
        self._exception = exc
        self._fire()

    def peek(self) -> tuple[Any, BaseException | None]:
        """``(value, exception)`` without raising — exactly one is set.

        Hot-path accessor for the process stepper: resuming a generator
        needs both slots without the :attr:`value` property's raise-on-
        error behaviour.  Must only be called on a resolved future; on an
        unresolved one it raises :class:`SimulationError`.
        """
        if self._exception is not None:
            return None, self._exception
        if self._value is _UNSET:
            raise SimulationError(f"future {self.label!r} peeked unresolved")
        return self._value, None

    def add_done_callback(self, callback: Callable[[Future], None]) -> None:
        """Run ``callback(self)`` when resolved (immediately if already)."""
        if self.resolved:
            callback(self)
        elif self._callbacks is None:
            self._callbacks = [callback]
        else:
            self._callbacks.append(callback)

    def _fire(self) -> None:
        callbacks, self._callbacks = self._callbacks, None
        if callbacks:
            for callback in callbacks:
                callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "resolved" if self.resolved else "pending"
        return f"<Future {self.label!r} {state}>"


def future_classes() -> tuple:
    """Every Future implementation the process stepper must recognize.

    The compiled kernel ships a C twin (``kernel().Future``) used by the
    protocol engines on their request/reply hot paths; pure-Python code
    (and the python backend) keeps this module's class.  Both satisfy the
    same contract, so a yielded effect of either type blocks a process.
    """
    from repro import _kernel

    kernel_module = _kernel.kernel()
    if kernel_module is not None:
        return (Future, kernel_module.Future)
    return (Future,)


def future_class() -> type:
    """The hot-path Future class for the active backend."""
    from repro import _kernel

    kernel_module = _kernel.kernel()
    return kernel_module.Future if kernel_module is not None else Future
