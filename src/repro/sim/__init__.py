"""Deterministic discrete-event simulation engine.

The engine is deliberately minimal: a time-ordered event heap with
deterministic FIFO tie-breaking (:class:`~repro.sim.engine.Simulator`),
one-shot :class:`~repro.sim.future.Future` values, and generator-based
cooperative :class:`~repro.sim.process.Process` coroutines.

Simulated code *yields* blocking effects — a :class:`~repro.sim.process.Delay`
or a :class:`~repro.sim.future.Future` — and is resumed by the engine when
the effect completes.  All state transitions happen at deterministic
simulated times, so identical inputs always produce identical traces.
"""

from repro.sim.engine import PySimulator, Simulator, make_simulator
from repro.sim.errors import DeadlockError, SimulationError
from repro.sim.future import Future
from repro.sim.process import Delay, Process

__all__ = [
    "DeadlockError",
    "Delay",
    "Future",
    "Process",
    "PySimulator",
    "SimulationError",
    "Simulator",
    "make_simulator",
]
