"""Generator-based cooperative processes.

A simulated thread is an ordinary Python generator.  It performs work by
yielding *effects*:

``yield Delay(dt)``
    advance this process's clock by ``dt`` microseconds (models local
    computation);

``yield future``
    block until the :class:`~repro.sim.future.Future` resolves; the yield
    expression evaluates to the future's value (or re-raises its failure
    exception inside the generator);

``yield None``
    cooperative no-op reschedule at the current instant.

Nested protocol steps compose with ``yield from``, so application code reads
like straight-line threaded code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, TYPE_CHECKING

from repro.sim.errors import ProcessFailed, SimulationError
from repro.sim.future import Future, future_classes

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator


@dataclass(frozen=True)
class Delay:
    """Effect: advance simulated time by ``duration_us`` for this process."""

    duration_us: float

    def __post_init__(self) -> None:
        if self.duration_us < 0:
            raise SimulationError(f"negative Delay({self.duration_us})")


class Process:
    """Drives one generator coroutine to completion on a simulator.

    The process's :attr:`finished` future resolves with the generator's
    return value, or fails with :class:`~repro.sim.errors.ProcessFailed`
    if the generator raises.
    """

    __slots__ = ("sim", "name", "_gen", "finished", "_started", "_blocking")

    def __init__(
        self, sim: "Simulator", generator: Generator[Any, Any, Any], name: str
    ):
        self.sim = sim
        self.name = name
        self._gen = generator
        self.finished: Future = Future(label=f"{name}.finished")
        self._started = False
        # Effect classes that block this process: the Python Future plus
        # the kernel's C twin when the compiled backend is active.
        self._blocking = future_classes()

    @property
    def done(self) -> bool:
        """Whether the generator ran to completion (or failed)."""
        return self.finished.resolved

    def start(self) -> None:
        """Schedule the first step at the current instant."""
        if self._started:
            raise SimulationError(f"process {self.name!r} started twice")
        self._started = True
        self.sim.call_soon(self._step, None, None)

    def _step(self, value: Any, exc: BaseException | None) -> None:
        # Hot loop: one generator resumption per iteration.  Effect
        # dispatch is inlined (no trampoline call) and continuation events
        # are scheduled as (bound method, args) tuples, so stepping never
        # allocates a closure.  A yield of an *already resolved* future
        # continues the generator inline instead of paying a schedule/
        # dispatch round trip — that is the ``while True``.
        gen = self._gen
        sim = self.sim
        while True:
            try:
                if exc is not None:
                    effect = gen.throw(exc)
                else:
                    effect = gen.send(value)
            except StopIteration as stop:
                self.finished.resolve(stop.value)
                return
            except Exception as error:  # noqa: BLE001 - simulated-code boundary
                self.finished.fail(ProcessFailed(self.name, error))
                return
            if effect is None:
                sim.call_soon(self._step, None, None)
                return
            if type(effect) is Delay:
                sim.schedule(effect.duration_us, self._step, None, None)
                return
            if isinstance(effect, self._blocking):
                if effect.resolved:
                    value, exc = effect.peek()
                    continue
                effect.add_done_callback(self._on_future)
                return
            self.finished.fail(
                ProcessFailed(
                    self.name,
                    SimulationError(f"process yielded unknown effect {effect!r}"),
                )
            )
            return

    def _on_future(self, future: Future) -> None:
        value, exc = future.peek()
        self.sim.call_soon(self._step, value, exc)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "done" if self.done else "running"
        return f"<Process {self.name!r} {state}>"


def join_all(processes: list[Process]) -> Generator[Any, Any, list[Any]]:
    """Generator helper: wait for every process, return their results in order.

    If any process failed, its :class:`~repro.sim.errors.ProcessFailed` is
    re-raised in the caller as soon as it is reached in order.
    """
    results = []
    for process in processes:
        value = yield process.finished
        results.append(value)
    return results
