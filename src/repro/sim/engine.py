"""The discrete-event simulator core: a deterministic time-ordered heap.

Two interchangeable backends implement the same contract:

* :class:`PySimulator` — the pure-Python reference implementation;
* :class:`CompiledSimulator` — a thin wrapper over the C event-heap in
  :mod:`repro._kernel` (created only when the compiled backend is
  active).

``Simulator`` is bound to the active backend's class at import time
(``REPRO_BACKEND`` selects it; see :mod:`repro._kernel`), and
:func:`make_simulator` constructs an instance of whichever backend is
active *now* — use it instead of ``Simulator()`` in library code so a
runtime :func:`repro._kernel.select_backend` call takes effect.

Both backends pop events in the identical (time, seq) order, so runs are
bit-for-bit reproducible whichever is active.
"""

from __future__ import annotations

import sys
from heapq import heappop, heappush
from typing import Any, Callable, Generator

from repro import _kernel
from repro.sim.errors import DeadlockError, SimulationError


class PySimulator:
    """Deterministic discrete-event simulator (pure-Python backend).

    Events are ``(time, seq, callback, args)`` tuples kept in a binary
    heap; the monotonically increasing ``seq`` breaks ties so that events
    scheduled for the same instant run in scheduling order.  Determinism
    of the whole reproduction rests on this property plus seeded
    application randomness.

    Callbacks are invoked as ``callback(*args)``.  Carrying the arguments
    in the event tuple lets hot callers (the network's delivery path, the
    process stepper) schedule a pre-bound method with its operands instead
    of allocating a fresh closure per event — the per-message lambda churn
    was the single largest interpreter overhead in the PR-1 profile.

    Time is a float in **microseconds** by convention throughout the
    package (the Hockney model's natural unit).
    """

    def __init__(self) -> None:
        self._now: float = 0.0
        self._seq: int = 0
        self._heap: list[tuple[float, int, Callable[..., None], tuple]] = []
        self._processes: list[Any] = []  # Process instances, for deadlock report
        self.events_processed: int = 0
        self._heartbeat: tuple[int, Callable[["PySimulator"], None]] | None = None

    def set_heartbeat(
        self, every_events: int, callback: Callable[["PySimulator"], None]
    ) -> None:
        """Invoke ``callback(self)`` every ``every_events`` processed events.

        Telemetry hook for progress reporting on long runs: the callback
        sees a live ``now`` and ``events_processed``.  Installing a
        heartbeat routes :meth:`run` through a separate instrumented
        loop, so the default (no-heartbeat) hot path is unchanged.
        """
        if every_events < 1:
            raise SimulationError(
                f"heartbeat interval must be >= 1 event, got {every_events}"
            )
        self._heartbeat = (every_events, callback)

    @property
    def now(self) -> float:
        """Current simulated time in microseconds."""
        return self._now

    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> None:
        """Run ``callback(*args)`` ``delay`` microseconds from now.

        ``delay`` must be non-negative; zero-delay events run after all
        events already scheduled for the current instant.
        """
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        heappush(self._heap, (self._now + delay, self._seq, callback, args))
        self._seq += 1

    def at(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> None:
        """Run ``callback(*args)`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self._now}"
            )
        heappush(self._heap, (time, self._seq, callback, args))
        self._seq += 1

    def call_soon(self, callback: Callable[..., None], *args: Any) -> None:
        """Schedule ``callback(*args)`` at the current instant (after
        pending ties)."""
        heappush(self._heap, (self._now, self._seq, callback, args))
        self._seq += 1

    def spawn(
        self, generator: Generator[Any, Any, Any], name: str = "proc"
    ) -> "Process":
        """Wrap ``generator`` in a :class:`Process` and start it immediately."""
        from repro.sim.process import Process

        process = Process(self, generator, name)
        self._processes.append(process)
        process.start()
        return process

    def run(self, until: float | None = None) -> float:
        """Drain the event heap; return the final simulated time.

        If ``until`` is given, stop once the next event lies beyond it (the
        clock is then advanced exactly to ``until``).  If the heap drains
        while spawned processes are still blocked, raise
        :class:`~repro.sim.errors.DeadlockError` naming them.
        """
        # The unbounded drain is the hot loop of every simulation: keep
        # the heap and pop local, pop exactly once per iteration, and
        # batch the processed-event accounting (callbacks never read it
        # mid-run; the try/finally keeps the counter exact even when a
        # callback raises).
        heap = self._heap
        pop = heappop
        processed = 0
        try:
            if self._heartbeat is not None:
                # Instrumented drain (telemetry only): counts into
                # events_processed live so the callback sees fresh state.
                every, beat = self._heartbeat
                countdown = every
                while heap:
                    time = heap[0][0]
                    if until is not None and time > until:
                        self._now = until
                        return self._now
                    _, _seq, callback, args = pop(heap)
                    self._now = time
                    self.events_processed += 1
                    if args:
                        callback(*args)
                    else:
                        callback()
                    countdown -= 1
                    if countdown == 0:
                        countdown = every
                        beat(self)
            elif until is None:
                while heap:
                    time, _seq, callback, args = pop(heap)
                    self._now = time
                    processed += 1
                    # args-free events take the fast CALL path; argful
                    # ones pay the unpacking call exactly once.
                    if args:
                        callback(*args)
                    else:
                        callback()
            else:
                while heap:
                    time = heap[0][0]
                    if time > until:
                        self._now = until
                        return self._now
                    _, _seq, callback, args = pop(heap)
                    self._now = time
                    processed += 1
                    if args:
                        callback(*args)
                    else:
                        callback()
        finally:
            self.events_processed += processed
        blocked = [p.name for p in self._processes if not p.done]
        if blocked:
            raise DeadlockError(blocked)
        if until is not None and until > self._now:
            self._now = until
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Simulator now={self._now:.3f}us pending={len(self._heap)} "
            f"processed={self.events_processed}>"
        )


def _build_compiled_class(kernel_module: Any) -> type:
    """Create the CompiledSimulator class over the loaded C kernel.

    The class subclasses the extension's ``Engine`` type, so the hot
    entry points (``schedule``/``at``/``call_soon``, the ``_now`` and
    ``events_processed`` attributes) resolve straight to C descriptors
    with no Python frame in between; only the cold orchestration
    (process bookkeeping, the deadlock report) stays in Python.
    """

    class CompiledSimulator(kernel_module.Engine):
        """Deterministic discrete-event simulator (compiled backend).

        Same contract as :class:`PySimulator` — identical event order
        (``(time, seq)`` heap), identical ``run(until)``/heartbeat/
        deadlock semantics, identical error messages — with the event
        heap, pop loop and callback dispatch implemented in C by
        :mod:`repro._kernel`.
        """

        def __init__(self) -> None:
            super().__init__()
            self._processes: list[Any] = []
            self._heartbeat: tuple[int, Callable[..., None]] | None = None

        def set_heartbeat(
            self, every_events: int, callback: Callable[..., None]
        ) -> None:
            """Invoke ``callback(self)`` every ``every_events`` events
            (see :meth:`PySimulator.set_heartbeat`)."""
            if every_events < 1:
                raise SimulationError(
                    f"heartbeat interval must be >= 1 event, got {every_events}"
                )
            self._heartbeat = (every_events, callback)

        def spawn(
            self, generator: Generator[Any, Any, Any], name: str = "proc"
        ) -> "Process":
            """Wrap ``generator`` in a :class:`Process` and start it
            immediately."""
            from repro.sim.process import Process

            process = Process(self, generator, name)
            self._processes.append(process)
            process.start()
            return process

        def run(self, until: float | None = None) -> float:
            """Drain the event heap; return the final simulated time
            (see :meth:`PySimulator.run`)."""
            if self._heartbeat is not None:
                every, beat = self._heartbeat
                stopped = self._drain(until, every, beat)
            else:
                stopped = self._drain(until, 0, None)
            if stopped:
                # Early stop at `until`: later events stay queued and a
                # still-blocked process is not a deadlock — it may be
                # waiting for events beyond the horizon.
                return self._now
            blocked = [p.name for p in self._processes if not p.done]
            if blocked:
                raise DeadlockError(blocked)
            if until is not None and until > self._now:
                self._now = until
            return self._now

        def __repr__(self) -> str:  # pragma: no cover - debug aid
            return (
                f"<Simulator now={self._now:.3f}us pending={self._pending} "
                f"processed={self.events_processed}>"
            )

    CompiledSimulator.__module__ = __name__
    CompiledSimulator.__qualname__ = "CompiledSimulator"
    return CompiledSimulator


#: The compiled backend's simulator class; ``None`` until (and unless)
#: the compiled kernel is active.
CompiledSimulator: type | None = None


def _active_class() -> type:
    """The simulator class of the currently active backend."""
    kernel_module = _kernel.kernel()
    if kernel_module is None:
        return PySimulator
    global CompiledSimulator
    if CompiledSimulator is None:
        CompiledSimulator = _build_compiled_class(kernel_module)
    return CompiledSimulator


def make_simulator() -> "PySimulator":
    """Construct a simulator on the active backend.

    Library code should prefer this over ``Simulator()``: the module-level
    ``Simulator`` name is bound once at import, while this factory honours
    a later :func:`repro._kernel.select_backend` call.
    """
    return _active_class()()


def _rebind_simulator() -> None:
    """Re-point ``Simulator`` here and in :mod:`repro.sim` at the active
    backend (called by :func:`repro._kernel.select_backend`)."""
    global Simulator
    Simulator = _active_class()
    sim_pkg = sys.modules.get("repro.sim")
    if sim_pkg is not None:
        sim_pkg.Simulator = Simulator


#: The active backend's simulator class, selected at import from
#: ``REPRO_BACKEND`` (``auto`` builds/loads the compiled kernel and falls
#: back to :class:`PySimulator` with a one-line warning).
Simulator: type = _active_class()
