"""The discrete-event simulator core: a deterministic time-ordered heap."""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Callable, Generator

from repro.sim.errors import DeadlockError, SimulationError


class Simulator:
    """Deterministic discrete-event simulator.

    Events are ``(time, seq, callback, args)`` tuples kept in a binary
    heap; the monotonically increasing ``seq`` breaks ties so that events
    scheduled for the same instant run in scheduling order.  Determinism
    of the whole reproduction rests on this property plus seeded
    application randomness.

    Callbacks are invoked as ``callback(*args)``.  Carrying the arguments
    in the event tuple lets hot callers (the network's delivery path, the
    process stepper) schedule a pre-bound method with its operands instead
    of allocating a fresh closure per event — the per-message lambda churn
    was the single largest interpreter overhead in the PR-1 profile.

    Time is a float in **microseconds** by convention throughout the
    package (the Hockney model's natural unit).
    """

    def __init__(self) -> None:
        self._now: float = 0.0
        self._seq: int = 0
        self._heap: list[tuple[float, int, Callable[..., None], tuple]] = []
        self._processes: list[Any] = []  # Process instances, for deadlock report
        self.events_processed: int = 0
        self._heartbeat: tuple[int, Callable[["Simulator"], None]] | None = None

    def set_heartbeat(
        self, every_events: int, callback: Callable[["Simulator"], None]
    ) -> None:
        """Invoke ``callback(self)`` every ``every_events`` processed events.

        Telemetry hook for progress reporting on long runs: the callback
        sees a live ``now`` and ``events_processed``.  Installing a
        heartbeat routes :meth:`run` through a separate instrumented
        loop, so the default (no-heartbeat) hot path is unchanged.
        """
        if every_events < 1:
            raise SimulationError(
                f"heartbeat interval must be >= 1 event, got {every_events}"
            )
        self._heartbeat = (every_events, callback)

    @property
    def now(self) -> float:
        """Current simulated time in microseconds."""
        return self._now

    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> None:
        """Run ``callback(*args)`` ``delay`` microseconds from now.

        ``delay`` must be non-negative; zero-delay events run after all
        events already scheduled for the current instant.
        """
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        heappush(self._heap, (self._now + delay, self._seq, callback, args))
        self._seq += 1

    def at(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> None:
        """Run ``callback(*args)`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self._now}"
            )
        heappush(self._heap, (time, self._seq, callback, args))
        self._seq += 1

    def call_soon(self, callback: Callable[..., None], *args: Any) -> None:
        """Schedule ``callback(*args)`` at the current instant (after
        pending ties)."""
        heappush(self._heap, (self._now, self._seq, callback, args))
        self._seq += 1

    def spawn(
        self, generator: Generator[Any, Any, Any], name: str = "proc"
    ) -> "Process":
        """Wrap ``generator`` in a :class:`Process` and start it immediately."""
        from repro.sim.process import Process

        process = Process(self, generator, name)
        self._processes.append(process)
        process.start()
        return process

    def run(self, until: float | None = None) -> float:
        """Drain the event heap; return the final simulated time.

        If ``until`` is given, stop once the next event lies beyond it (the
        clock is then advanced exactly to ``until``).  If the heap drains
        while spawned processes are still blocked, raise
        :class:`~repro.sim.errors.DeadlockError` naming them.
        """
        # The unbounded drain is the hot loop of every simulation: keep
        # the heap and pop local, pop exactly once per iteration, and
        # batch the processed-event accounting (callbacks never read it
        # mid-run; the try/finally keeps the counter exact even when a
        # callback raises).
        heap = self._heap
        pop = heappop
        processed = 0
        try:
            if self._heartbeat is not None:
                # Instrumented drain (telemetry only): counts into
                # events_processed live so the callback sees fresh state.
                every, beat = self._heartbeat
                countdown = every
                while heap:
                    time = heap[0][0]
                    if until is not None and time > until:
                        self._now = until
                        return self._now
                    _, _seq, callback, args = pop(heap)
                    self._now = time
                    self.events_processed += 1
                    if args:
                        callback(*args)
                    else:
                        callback()
                    countdown -= 1
                    if countdown == 0:
                        countdown = every
                        beat(self)
            elif until is None:
                while heap:
                    time, _seq, callback, args = pop(heap)
                    self._now = time
                    processed += 1
                    # args-free events take the fast CALL path; argful
                    # ones pay the unpacking call exactly once.
                    if args:
                        callback(*args)
                    else:
                        callback()
            else:
                while heap:
                    time = heap[0][0]
                    if time > until:
                        self._now = until
                        return self._now
                    _, _seq, callback, args = pop(heap)
                    self._now = time
                    processed += 1
                    if args:
                        callback(*args)
                    else:
                        callback()
        finally:
            self.events_processed += processed
        blocked = [p.name for p in self._processes if not p.done]
        if blocked:
            raise DeadlockError(blocked)
        if until is not None and until > self._now:
            self._now = until
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Simulator now={self._now:.3f}us pending={len(self._heap)} "
            f"processed={self.events_processed}>"
        )
