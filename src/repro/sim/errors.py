"""Exception hierarchy of the simulation engine."""


class SimulationError(RuntimeError):
    """Base class for errors raised by the simulation engine."""


class DeadlockError(SimulationError):
    """The event queue drained while processes were still blocked.

    Raised by :meth:`repro.sim.engine.Simulator.run` when processes spawned
    on the simulator never terminated but no event can ever resume them —
    the simulated-systems analogue of a distributed deadlock (e.g. a lock
    acquired and never released, or a barrier that not every thread
    reaches).
    """

    def __init__(self, blocked: list[str]):
        self.blocked = list(blocked)
        names = ", ".join(self.blocked) or "<unknown>"
        super().__init__(
            f"simulation deadlock: event queue empty but {len(self.blocked)} "
            f"process(es) still blocked: {names}"
        )


class ProcessFailed(SimulationError):
    """A simulated process raised an exception.

    The original exception is chained as ``__cause__`` and also stored on
    :attr:`original`, so harness code can re-raise or inspect it.
    """

    def __init__(self, process_name: str, original: BaseException):
        self.process_name = process_name
        self.original = original
        super().__init__(f"process {process_name!r} failed: {original!r}")
        self.__cause__ = original
