"""Small numeric helpers shared by the benchmark harness and tests.

These mirror how the paper presents its data: Figure 5 normalizes each
group of bars "to the largest one among them"; Figure 3 reports the
*improvement* of AT over FT as a percentage reduction.
"""

from __future__ import annotations

from typing import Iterable, Mapping


def normalize_series(values: Iterable[float]) -> list[float]:
    """Scale values to the largest one (paper's Figure-5 normalization)."""
    values = list(values)
    if not values:
        return []
    peak = max(values)
    if peak <= 0:
        raise ValueError(f"cannot normalize series with peak {peak}")
    return [v / peak for v in values]


def normalize_map(values: Mapping[str, float]) -> dict[str, float]:
    """Normalize a labelled group of bars to its largest member."""
    keys = list(values)
    normed = normalize_series(values[k] for k in keys)
    return dict(zip(keys, normed))


def improvement_percent(baseline: float, improved: float) -> float:
    """Percentage reduction of ``improved`` relative to ``baseline``.

    Positive means the improved variant is better (smaller); the paper's
    Figure 3 reports exactly this for execution time, message number and
    network traffic (AT over FT).
    """
    if baseline <= 0:
        raise ValueError(f"baseline must be positive, got {baseline}")
    return 100.0 * (baseline - improved) / baseline


def speedup(time_low_parallelism: float, time_high_parallelism: float) -> float:
    """Classic speedup ratio between two execution times."""
    if time_high_parallelism <= 0:
        raise ValueError(
            f"time must be positive, got {time_high_parallelism}"
        )
    return time_low_parallelism / time_high_parallelism
