"""Scaling analysis helpers for processor sweeps (Figure-2-style data)."""

from __future__ import annotations

from typing import Mapping


def speedup_curve(times: Mapping[int, float]) -> dict[int, float]:
    """Speedup relative to the smallest processor count in the sweep.

    ``times`` maps processor count -> execution time; the baseline is the
    entry with the fewest processors (the paper's sweeps start at P=2,
    so this is *relative* speedup, as in Figure 2).
    """
    if not times:
        return {}
    base_p = min(times)
    base_time = times[base_p]
    if base_time <= 0:
        raise ValueError(f"non-positive baseline time {base_time}")
    return {p: base_time / t for p, t in sorted(times.items())}


def parallel_efficiency(times: Mapping[int, float]) -> dict[int, float]:
    """Efficiency = speedup / (P / P_base) for each sweep point."""
    curve = speedup_curve(times)
    if not curve:
        return {}
    base_p = min(curve)
    return {p: s / (p / base_p) for p, s in curve.items()}


def crossover_size(
    improvements: Mapping[int, float], threshold: float = 0.0
) -> int | None:
    """Smallest problem size whose improvement exceeds ``threshold``.

    Used to locate where a protocol starts paying off in a size sweep
    (Figure-3-style data); returns None if it never does.
    """
    for size in sorted(improvements):
        if improvements[size] > threshold:
            return size
    return None
