"""Result analysis helpers: normalization, improvements, speedups."""

from repro.analysis.metrics import (
    improvement_percent,
    normalize_map,
    normalize_series,
    speedup,
)
from repro.analysis.scaling import (
    crossover_size,
    parallel_efficiency,
    speedup_curve,
)

__all__ = [
    "crossover_size",
    "improvement_percent",
    "normalize_map",
    "normalize_series",
    "parallel_efficiency",
    "speedup",
    "speedup_curve",
]
