"""Diff computation, encoding size, and application.

A diff is the set of elements that changed between a twin and the current
copy of an object.  We carry real indices and values (so homes apply real
updates and application results stay verifiable) and charge a run-length
encoded wire size: changed elements group into maximal runs of consecutive
indices; each run costs ``RUN_HEADER_BYTES`` (offset + length) plus its
payload bytes, on top of a fixed ``DIFF_HEADER_BYTES`` per diff.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Per-diff fixed overhead: object id, base version, run count.
DIFF_HEADER_BYTES = 16
#: Per-run overhead: 4-byte offset + 4-byte length.
RUN_HEADER_BYTES = 8


def _runs(indices: np.ndarray) -> int:
    """Number of maximal runs of consecutive indices (indices sorted)."""
    if indices.size == 0:
        return 0
    return 1 + int(np.count_nonzero(np.diff(indices) != 1))


def diff_size_bytes(indices: np.ndarray, itemsize: int) -> int:
    """Encoded wire size of a diff over ``indices`` with ``itemsize`` data."""
    if indices.size == 0:
        return 0
    return (
        DIFF_HEADER_BYTES
        + _runs(indices) * RUN_HEADER_BYTES
        + int(indices.size) * itemsize
    )


@dataclass(frozen=True)
class Diff:
    """An encoded update set for one object.

    ``indices`` are sorted element positions; ``values`` the new contents.
    ``size_bytes`` is the run-length-encoded wire size.
    """

    oid: int
    indices: np.ndarray
    values: np.ndarray
    size_bytes: int

    @property
    def nchanged(self) -> int:
        return int(self.indices.size)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Diff oid={self.oid} changed={self.nchanged} {self.size_bytes}B>"


def compute_diff(oid: int, twin: np.ndarray, current: np.ndarray) -> Diff | None:
    """Diff ``current`` against ``twin``; ``None`` when nothing changed.

    Comparison is exact bit-for-bit (``!=`` on the arrays); NaNs compare
    unequal to themselves, which conservatively treats a written NaN as a
    change — acceptable since our applications never store NaN.
    """
    if twin.shape != current.shape or twin.dtype != current.dtype:
        raise ValueError(
            f"twin/current layout mismatch for oid {oid}: "
            f"{twin.dtype}{twin.shape} vs {current.dtype}{current.shape}"
        )
    # Cheap exit: most sync intervals leave most twins untouched, and an
    # equality check is far cheaper than materialising the index set.
    if np.array_equal(twin, current):
        return None
    changed = np.nonzero(current != twin)[0]
    if changed.size == 0:  # pragma: no cover - array_equal caught it
        return None
    values = current[changed].copy()
    return Diff(
        oid=oid,
        indices=changed,
        values=values,
        size_bytes=diff_size_bytes(changed, current.dtype.itemsize),
    )


def apply_diff(payload: np.ndarray, diff: Diff) -> None:
    """Apply ``diff`` in place to ``payload``."""
    if diff.indices.size and int(diff.indices[-1]) >= payload.size:
        raise IndexError(
            f"diff for oid {diff.oid} touches index {int(diff.indices[-1])} "
            f"outside payload of size {payload.size}"
        )
    payload[diff.indices] = diff.values
