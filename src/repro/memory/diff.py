"""Diff computation, encoding size, and application.

A diff is the set of elements that changed between a twin and the current
copy of an object.  We carry real indices and values (so homes apply real
updates and application results stay verifiable) and charge a run-length
encoded wire size: changed elements group into maximal runs of consecutive
indices; each run costs ``RUN_HEADER_BYTES`` (offset + length) plus its
payload bytes, on top of a fixed ``DIFF_HEADER_BYTES`` per diff.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import _kernel

#: Per-diff fixed overhead: object id, base version, run count.
DIFF_HEADER_BYTES = 16
#: Per-run overhead: 4-byte offset + 4-byte length.
RUN_HEADER_BYTES = 8


def _runs(indices: np.ndarray) -> int:
    """Number of maximal runs of consecutive indices (indices sorted)."""
    n = int(indices.size)
    if n == 0:
        return 0
    # Contiguous-block fast path: dense writes (SOR row sweeps, LU panel
    # updates) change one solid span, recognisable from the endpoints
    # alone — no per-element gap scan needed.
    if int(indices[-1]) - int(indices[0]) + 1 == n:
        return 1
    # Direct subtraction instead of np.diff: same gap vector without the
    # generic wrapper's axis/prepend handling, which shows up at this
    # call rate.
    return 1 + int(np.count_nonzero(indices[1:] - indices[:-1] != 1))


def diff_size_bytes(indices: np.ndarray, itemsize: int) -> int:
    """Encoded wire size of a diff over ``indices`` with ``itemsize`` data."""
    if indices.size == 0:
        return 0
    return (
        DIFF_HEADER_BYTES
        + _runs(indices) * RUN_HEADER_BYTES
        + int(indices.size) * itemsize
    )


@dataclass(frozen=True, slots=True)
class Diff:
    """An encoded update set for one object.

    ``indices`` are sorted element positions; ``values`` the new contents.
    ``size_bytes`` is the run-length-encoded wire size.
    """

    oid: int
    indices: np.ndarray
    values: np.ndarray
    size_bytes: int

    @property
    def nchanged(self) -> int:
        return int(self.indices.size)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Diff oid={self.oid} changed={self.nchanged} {self.size_bytes}B>"


def compute_diff(
    oid: int,
    twin: np.ndarray,
    current: np.ndarray,
    scratch: np.ndarray | None = None,
) -> Diff | None:
    """Diff ``current`` against ``twin``; ``None`` when nothing changed.

    Comparison is exact bit-for-bit (``!=`` on the arrays); NaNs compare
    unequal to themselves, which conservatively treats a written NaN as a
    change — acceptable since our applications never store NaN.

    ``scratch`` (a bool buffer of at least ``current.size`` elements,
    typically :meth:`~repro.memory.arena.Arena.bool_scratch`) receives
    the element-wise comparison in place of a fresh temporary; its
    contents afterwards are unspecified.
    """
    if twin.shape != current.shape or twin.dtype != current.dtype:
        raise ValueError(
            f"twin/current layout mismatch for oid {oid}: "
            f"{twin.dtype}{twin.shape} vs {current.dtype}{current.shape}"
        )
    # Compiled fast path: one C scan produces indices, values and the run
    # count together.  Restricted to exact ndarray operands so subclasses
    # keep their comparison-operator semantics (and the single-comparison
    # contract below stays observable); the kernel returns NotImplemented
    # for layouts/dtypes it does not handle, which fall through to the
    # numpy path.
    kernel_module = _kernel.kernel()
    if (
        kernel_module is not None
        and type(twin) is np.ndarray
        and type(current) is np.ndarray
    ):
        scan = kernel_module.diff_arrays(current, twin)
        if scan is None:
            return None
        if scan is not NotImplemented:
            indices, values, nruns = scan
            return Diff(
                oid=oid,
                indices=indices,
                values=values,
                size_bytes=(
                    DIFF_HEADER_BYTES
                    + nruns * RUN_HEADER_BYTES
                    + int(indices.size) * current.dtype.itemsize
                ),
            )
    # Single scan: one element-wise comparison feeds the cheap exit, the
    # index extraction, and (via ``_runs``) the wire-size computation.
    # Most sync intervals leave most twins untouched, so the ``not
    # neq.any()`` exit fires far more often than the materialisation.
    if scratch is not None and scratch.size >= current.size:
        neq = np.not_equal(current, twin, out=scratch[: current.size])
    else:
        neq = current != twin
    if not neq.any():
        return None
    changed = np.flatnonzero(neq)
    values = current[changed]  # fancy indexing already copies
    return Diff(
        oid=oid,
        indices=changed,
        values=values,
        size_bytes=diff_size_bytes(changed, current.dtype.itemsize),
    )


def apply_diff(payload: np.ndarray, diff: Diff) -> None:
    """Apply ``diff`` in place to ``payload``."""
    if diff.indices.size and int(diff.indices[-1]) >= payload.size:
        raise IndexError(
            f"diff for oid {diff.oid} touches index {int(diff.indices[-1])} "
            f"outside payload of size {payload.size}"
        )
    payload[diff.indices] = diff.values
