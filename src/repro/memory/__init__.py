"""Memory substrate: shared objects, twins, diffs, and write notices.

The coherence unit is the *object* (the paper's GOS choice, matching the
Java memory model): either an array object (numpy-backed) or a small
fields object (named scalar slots, also numpy-backed so that twin/diff
machinery is uniform).

Twins and diffs follow TreadMarks/HLRC: a writer snapshots a twin before
its first write in a synchronization interval; at release the diff —
the set of changed elements, run-length encoded for sizing — is shipped
to the home and applied there.
"""

from repro.memory.arena import Arena
from repro.memory.diff import Diff, apply_diff, compute_diff, diff_size_bytes
from repro.memory.heap import ObjectHeap
from repro.memory.objects import FieldsSpec, ArraySpec, SharedObject
from repro.memory.twin import make_twin
from repro.memory.version import WriteNotice

__all__ = [
    "Arena",
    "ArraySpec",
    "Diff",
    "FieldsSpec",
    "ObjectHeap",
    "SharedObject",
    "WriteNotice",
    "apply_diff",
    "compute_diff",
    "diff_size_bytes",
    "make_twin",
]
