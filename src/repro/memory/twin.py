"""Twin creation.

A *twin* is the pristine copy of an object snapshot taken immediately
before the first write in a synchronization interval (TreadMarks' write
trapping).  The diff at release is ``current - twin``; see
:mod:`repro.memory.diff`.
"""

from __future__ import annotations

import numpy as np


def make_twin(payload: np.ndarray) -> np.ndarray:
    """Snapshot ``payload`` into an independent twin copy."""
    if payload.ndim != 1:
        raise ValueError(f"payloads are 1-D arrays, got ndim={payload.ndim}")
    return payload.copy()
