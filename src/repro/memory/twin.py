"""Twin creation.

A *twin* is the pristine copy of an object snapshot taken immediately
before the first write in a synchronization interval (TreadMarks' write
trapping).  The diff at release is ``current - twin``; see
:mod:`repro.memory.diff`.

Twins are never exposed to application code, which makes them the ideal
pooling target: created at the first write of an interval, dead the
moment the diff is computed at release.  Passing an
:class:`~repro.memory.arena.Arena` as ``pool`` draws the snapshot from
(and lets the caller return it to) that pool instead of allocating fresh.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.memory.arena import Arena


def make_twin(payload: np.ndarray, pool: "Arena | None" = None) -> np.ndarray:
    """Snapshot ``payload`` into an independent twin copy.

    With ``pool`` set, the twin buffer comes from the arena's free list
    (the caller frees it back after the interval's diff is flushed).
    """
    if payload.ndim != 1:
        raise ValueError(f"payloads are 1-D arrays, got ndim={payload.ndim}")
    if pool is not None:
        return pool.take_copy(payload)
    return payload.copy()
