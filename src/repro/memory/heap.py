"""Object heap: allocation of shared coherence units.

The heap allocates object ids and remembers every descriptor, plus the
*initial* home assignment of each object (the well-known mapping the paper
assumes: "all units are initially assigned a home node", §3.2).  Current
home locations are protocol state and live in the DSM layer, not here.
"""

from __future__ import annotations

from typing import Iterator, Mapping

from repro.memory.objects import ArraySpec, FieldsSpec, SharedObject


class ObjectHeap:
    """Allocator and registry of :class:`~repro.memory.objects.SharedObject`."""

    def __init__(self) -> None:
        self._objects: dict[int, SharedObject] = {}
        self._initial_home: dict[int, int] = {}
        #: Initial payload images (used by the homeless protocol, whose
        #: nodes all start from identical images, and by verification).
        self.initial_values: dict[int, "object"] = {}
        self._next_oid = 1

    def alloc_array(
        self,
        length: int,
        dtype: str = "float64",
        home: int = 0,
        label: str = "",
        meta: Mapping | None = None,
    ) -> SharedObject:
        """Allocate an array object whose initial home is ``home``."""
        return self._alloc(ArraySpec(length, dtype), home, label, meta)

    def alloc_fields(
        self,
        fields: tuple[str, ...] | list[str],
        dtype: str = "float64",
        home: int = 0,
        label: str = "",
        meta: Mapping | None = None,
    ) -> SharedObject:
        """Allocate a named-fields object whose initial home is ``home``."""
        return self._alloc(FieldsSpec(tuple(fields), dtype), home, label, meta)

    def _alloc(
        self,
        spec: ArraySpec | FieldsSpec,
        home: int,
        label: str,
        meta: Mapping | None,
    ) -> SharedObject:
        if home < 0:
            raise ValueError(f"initial home must be non-negative, got {home}")
        obj = SharedObject(oid=self._next_oid, spec=spec, label=label, meta=meta)
        self._next_oid += 1
        self._objects[obj.oid] = obj
        self._initial_home[obj.oid] = home
        return obj

    def get(self, oid: int) -> SharedObject:
        """Descriptor for ``oid``; KeyError for unknown ids."""
        return self._objects[oid]

    def initial_home(self, oid: int) -> int:
        """The well-known initial home node of ``oid``."""
        return self._initial_home[oid]

    def total_data_bytes(self) -> int:
        """Sum of every allocated object's payload data bytes.

        The denominator for memory-footprint reporting: one full replica
        set of the heap costs exactly this much payload storage, so
        arena/GC telemetry can express live cache bytes as a multiple of
        the heap's data size.
        """
        return sum(obj.spec.data_bytes for obj in self._objects.values())

    def __len__(self) -> int:
        return len(self._objects)

    def __iter__(self) -> Iterator[SharedObject]:
        return iter(self._objects.values())

    def __contains__(self, oid: int) -> bool:
        return oid in self._objects
