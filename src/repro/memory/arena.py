"""Arena allocator: pooled slab storage for payload/twin/scratch buffers.

Every replica payload, twin snapshot, and diff scratch buffer in the DSM
layer is a 1-D numpy array whose size is fixed by its object's layout.
Allocating them with ``np.empty``/``copy()`` per fault-in and per write
interval churns the allocator and lets peak RSS grow with the *history*
of the run instead of its *live set* — the garbage problem real HLRC
runtimes solve with pooling.  An :class:`Arena` replaces that churn:

* storage is carved from large contiguous **slabs** (one ``uint8`` numpy
  buffer each); an allocation is a dtype view of a slab slice, aligned
  to :data:`ALIGN_BYTES`;
* :meth:`free` returns a buffer to a per-``(length, dtype)`` **free
  list**; the next :meth:`alloc` of that exact shape reuses it instead
  of carving new slab space, so steady-state allocation traffic is
  recycled and slabs stop growing once the live set stabilises;
* a single growable **bool scratch** buffer backs ``compute_diff``'s
  element-wise comparison, eliminating one temporary per diff.

Ownership discipline (see ``docs/PROTOCOL.md`` §12): a buffer may be
freed only when *provably dead* — no thread, cache entry, home entry or
in-flight message can reach it.  Twins (never exposed to application
code) and cache payloads dropped while ``INVALID`` satisfy this; live
payloads never do.  Freeing is permissive about origin: buffers
allocated by another node's arena (an object image that travelled in a
message) may be freed into this one — ownership travels with the data,
exactly like the payload bytes it carries.

Determinism: arenas change *where* bytes live, never their values.
Every allocation handed out is either fully zeroed (:meth:`zeros`) or
fully overwritten (:meth:`take_copy`), so buffer reuse cannot leak
stale values into results.
"""

from __future__ import annotations

import numpy as np

#: Carve offsets are rounded up to this many bytes so dtype views stay
#: aligned (numpy tolerates unaligned views but they are slow).
ALIGN_BYTES = 16

#: Default slab size.  Large enough that a figure-scale run needs only a
#: handful of slabs per node; a single oversized allocation gets a
#: dedicated slab of its own size.
DEFAULT_SLAB_BYTES = 1 << 20


class Arena:
    """Slab allocator with exact-size free lists for one node.

    All buffers are 1-D.  ``alloc`` returns uninitialised memory —
    callers must overwrite it fully (use :meth:`zeros` or
    :meth:`take_copy` unless they already do).
    """

    __slots__ = (
        "label",
        "slab_bytes",
        "_slab",
        "_offset",
        "_free",
        "_scratch",
        "slabs_allocated",
        "slab_bytes_total",
        "carve_count",
        "reuse_count",
        "free_count",
        "live_bytes",
        "pooled_bytes",
    )

    def __init__(
        self, slab_bytes: int = DEFAULT_SLAB_BYTES, label: str = ""
    ) -> None:
        if slab_bytes < ALIGN_BYTES:
            raise ValueError(f"slab_bytes must be >= {ALIGN_BYTES}, got {slab_bytes}")
        self.label = label
        self.slab_bytes = slab_bytes
        self._slab: np.ndarray | None = None
        self._offset = 0
        #: (length, dtype) -> list of reusable views.
        self._free: dict[tuple[int, np.dtype], list[np.ndarray]] = {}
        self._scratch: np.ndarray = np.empty(0, dtype=bool)
        # -- accounting (introspection/telemetry only) ---------------------
        self.slabs_allocated = 0
        self.slab_bytes_total = 0
        self.carve_count = 0
        self.reuse_count = 0
        self.free_count = 0
        self.live_bytes = 0
        self.pooled_bytes = 0

    # -- allocation ---------------------------------------------------------

    def alloc(self, length: int, dtype: str | np.dtype = "float64") -> np.ndarray:
        """An uninitialised 1-D buffer of ``length`` elements of ``dtype``.

        Reuses a freed buffer of the exact same shape when one is
        pooled; otherwise carves fresh slab space.
        """
        if length <= 0:
            raise ValueError(f"allocation length must be positive, got {length}")
        # np.dtype objects hash/compare by value, so they key the free
        # lists directly (cheaper than canonicalising to a string).
        dt = dtype if isinstance(dtype, np.dtype) else np.dtype(dtype)
        stack = self._free.get((length, dt))
        if stack:
            view = stack.pop()
            self.reuse_count += 1
            self.pooled_bytes -= view.nbytes
            self.live_bytes += view.nbytes
            return view
        view = self._carve(length, dt)
        self.carve_count += 1
        self.live_bytes += view.nbytes
        return view

    def zeros(self, length: int, dtype: str | np.dtype = "float64") -> np.ndarray:
        """A zeroed buffer (pool-reuse equivalent of ``np.zeros``)."""
        view = self.alloc(length, dtype)
        view.fill(0)
        return view

    def take_copy(self, src: np.ndarray) -> np.ndarray:
        """A pooled copy of 1-D ``src`` (pool-reuse equivalent of ``.copy()``)."""
        if src.ndim != 1:
            raise ValueError(f"arenas hold 1-D buffers, got ndim={src.ndim}")
        view = self.alloc(src.size, src.dtype)
        np.copyto(view, src)
        return view

    def free(self, buf: np.ndarray) -> None:
        """Return ``buf`` to the pool for same-shape reuse.

        The caller asserts the buffer is dead: nothing else may read or
        write it afterwards.  Buffers of foreign origin (another arena,
        or a plain numpy allocation that entered the protocol before the
        arena existed) are accepted — pooling them is strictly a win.
        """
        if buf.ndim != 1:
            raise ValueError(f"arenas hold 1-D buffers, got ndim={buf.ndim}")
        key = (buf.size, buf.dtype)
        stack = self._free.get(key)
        if stack is None:
            stack = self._free[key] = []
        stack.append(buf)
        self.free_count += 1
        self.pooled_bytes += buf.nbytes
        self.live_bytes = max(0, self.live_bytes - buf.nbytes)

    def bool_scratch(self, length: int) -> np.ndarray:
        """A reusable boolean buffer of ``length`` elements.

        One buffer per arena, grown geometrically and never returned —
        the ``out=`` target for ``compute_diff``'s element-wise compare.
        Contents are unspecified on entry; the caller overwrites fully.
        """
        if self._scratch.size < length:
            self._scratch = np.empty(
                max(length, 2 * self._scratch.size), dtype=bool
            )
        return self._scratch[:length]

    # -- internals ----------------------------------------------------------

    def _carve(self, length: int, dt: np.dtype) -> np.ndarray:
        nbytes = length * dt.itemsize
        aligned = -(-nbytes // ALIGN_BYTES) * ALIGN_BYTES
        slab = self._slab
        if slab is None or self._offset + aligned > slab.size:
            size = max(self.slab_bytes, aligned)
            slab = self._slab = np.empty(size, dtype=np.uint8)
            self._offset = 0
            self.slabs_allocated += 1
            self.slab_bytes_total += size
        start = self._offset
        self._offset = start + aligned
        return slab[start : start + nbytes].view(dt)

    # -- introspection ------------------------------------------------------

    def stats(self) -> dict:
        """Plain-dict accounting snapshot (telemetry and tests)."""
        return {
            "label": self.label,
            "slabs": self.slabs_allocated,
            "slab_bytes": self.slab_bytes_total,
            "carves": self.carve_count,
            "reuses": self.reuse_count,
            "frees": self.free_count,
            "live_bytes": self.live_bytes,
            "pooled_bytes": self.pooled_bytes,
            "pooled_buffers": sum(len(v) for v in self._free.values()),
            "scratch_bytes": self._scratch.nbytes,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Arena {self.label or id(self):x} slabs={self.slabs_allocated} "
            f"live={self.live_bytes}B pooled={self.pooled_bytes}B>"
        )


def new_arena(slab_bytes: int = DEFAULT_SLAB_BYTES, label: str = "") -> Arena:
    """An arena from the active backend.

    The compiled kernel ships a C twin of :class:`Arena` (identical
    methods, error messages and accounting); engines allocate through it
    when the compiled backend is loaded because ``take_copy``/``free``
    sit on the per-message hot path.  The pure-Python class stays the
    reference — and the return type, as far as callers are concerned.
    """
    from repro import _kernel

    kernel_module = _kernel.kernel()
    if kernel_module is not None:
        return kernel_module.Arena(slab_bytes, label)
    return Arena(slab_bytes, label)
