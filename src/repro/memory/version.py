"""Versions and write notices.

Each object's home keeps a monotonically increasing integer version,
bumped once per applied update interval (one diff application, or one
home-write interval closed at release).  A :class:`WriteNotice` announces
"object ``oid`` reached version ``version``"; notices piggyback on lock
grants and barrier releases (lazy release consistency), and a cached copy
older than a received notice must be invalidated.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True, slots=True)
class WriteNotice:
    """An LRC write notice: ``oid`` was updated up to ``version``."""

    oid: int
    version: int

    def __post_init__(self) -> None:
        if self.version < 1:
            raise ValueError(f"notice version must be >= 1, got {self.version}")


def merge_notices(
    accumulated: dict[int, int], incoming: "list[WriteNotice] | dict[int, int]"
) -> None:
    """Fold ``incoming`` notices into an ``oid -> max version`` map, in place."""
    if isinstance(incoming, dict):
        from repro import _kernel

        kernel_module = _kernel.kernel()
        if kernel_module is not None:
            kernel_module.merge_notices(accumulated, incoming)
            return
        items = incoming.items()
    else:
        items = ((n.oid, n.version) for n in incoming)
    for oid, version in items:
        if accumulated.get(oid, 0) < version:
            accumulated[oid] = version
