"""Shared coherence units: array objects and fields objects.

A :class:`SharedObject` is the *descriptor* of one coherence unit — its
identity, layout and Java-like size model.  Payloads (the actual bytes)
live in replicas managed by the DSM layer; every payload is a 1-D numpy
array so twin/diff machinery is uniform and fast.

Size model (Java-flavoured, matching the paper's object-granularity DSM):
every object pays :data:`OBJECT_HEADER_BYTES` of header; array objects add
``length * itemsize``; fields objects add one slot per field.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Mapping, TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.memory.arena import Arena

#: JVM-like per-object header (mark word, class pointer, array length).
OBJECT_HEADER_BYTES = 16


@dataclass(frozen=True)
class ArraySpec:
    """Layout of an array object: ``length`` elements of ``dtype``."""

    length: int
    dtype: str = "float64"

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise ValueError(f"array length must be positive, got {self.length}")
        np.dtype(self.dtype)  # validates

    # Layout sizes are cached on first access (specs are frozen, so the
    # values can never change): size lookups sit on the per-message hot
    # path, and ``np.dtype(...)`` per call is measurable there.
    @cached_property
    def itemsize(self) -> int:
        return np.dtype(self.dtype).itemsize

    def new_payload(self, arena: "Arena | None" = None) -> np.ndarray:
        if arena is not None:
            return arena.zeros(self.length, self.dtype)
        return np.zeros(self.length, dtype=self.dtype)

    @cached_property
    def data_bytes(self) -> int:
        return self.length * self.itemsize


@dataclass(frozen=True)
class FieldsSpec:
    """Layout of a plain object with named scalar fields.

    Fields map to slots of a small 1-D array; :meth:`slot` translates a
    field name to its index.
    """

    fields: tuple[str, ...]
    dtype: str = "float64"

    def __post_init__(self) -> None:
        if not self.fields:
            raise ValueError("fields object needs at least one field")
        if len(set(self.fields)) != len(self.fields):
            raise ValueError(f"duplicate field names in {self.fields}")
        np.dtype(self.dtype)

    @cached_property
    def itemsize(self) -> int:
        return np.dtype(self.dtype).itemsize

    def slot(self, name: str) -> int:
        try:
            return self.fields.index(name)
        except ValueError:
            raise KeyError(f"object has no field {name!r}") from None

    def new_payload(self, arena: "Arena | None" = None) -> np.ndarray:
        if arena is not None:
            return arena.zeros(len(self.fields), self.dtype)
        return np.zeros(len(self.fields), dtype=self.dtype)

    @cached_property
    def data_bytes(self) -> int:
        return len(self.fields) * self.itemsize


@dataclass(frozen=True)
class SharedObject:
    """Descriptor of one shared coherence unit.

    Instances are immutable and hashable; they are what application code
    passes to the :class:`~repro.gos.thread.ThreadContext` access methods.
    """

    oid: int
    spec: ArraySpec | FieldsSpec
    label: str = ""
    #: Extra metadata slot for applications (e.g. row index), not sized.
    meta: Mapping | None = field(default=None, compare=False, hash=False)

    @cached_property
    def size_bytes(self) -> int:
        """Wire size of a full object image (header + data)."""
        return OBJECT_HEADER_BYTES + self.spec.data_bytes

    @cached_property
    def itemsize(self) -> int:
        return self.spec.itemsize

    def new_payload(self, arena: "Arena | None" = None) -> np.ndarray:
        """A fresh zeroed payload with this object's layout.

        With ``arena`` set, the buffer comes from that node's pooled
        slabs instead of a standalone numpy allocation.
        """
        return self.spec.new_payload(arena)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        tag = self.label or type(self.spec).__name__
        return f"<SharedObject #{self.oid} {tag} {self.size_bytes}B>"
