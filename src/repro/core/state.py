"""Per-object access bookkeeping kept at the object's home (§3.3, §4.1).

The home monitors, per object:

* **remote reads** — object fault-in requests arriving at the home;
* **remote writes** — diffs received at synchronization points;
* **home reads / home writes** — access faults of the home copy itself,
  trapped by invalidating it on acquire and write-protecting it on release;
* ``C`` — *consecutive remote writes*: writes from one remote node not
  interleaved with writes from the home or other remote nodes;
* ``E`` — *exclusive home writes* since the last migration: a home write
  with no remote write since an earlier home write (positive feedback);
* ``R`` — *redirected object requests* since the last migration, counted
  with accumulation (a request forwarded three times adds three) —
  negative feedback;
* the frozen threshold base ``T_{i-1}`` and a running average of observed
  diff sizes (used to evaluate ``alpha``).

This state object travels with the home on migration — the new home
continues the feedback loop where the old one left off.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Sentinel writer id meaning "the home node itself wrote".
HOME_WRITER = -1


@dataclass
class ObjectAccessState:
    """Mutable per-object monitor/feedback state, owned by the home."""

    oid: int
    object_bytes: int

    # -- single-writer detection (C_i) ------------------------------------
    consecutive_writes: int = 0
    consecutive_writer: int | None = None

    # -- feedback since last migration (E_i, R_i) --------------------------
    exclusive_home_writes: int = 0
    redirections: int = 0

    # -- adaptive threshold base (T_{i-1}) ---------------------------------
    threshold_base: float = 1.0

    # -- lifetime statistics ------------------------------------------------
    migrations: int = 0
    home_reads: int = 0
    home_writes: int = 0
    remote_reads: int = 0
    remote_writes: int = 0

    # -- auxiliary ----------------------------------------------------------
    #: Last writer (node id or HOME_WRITER); None before the first write.
    last_writer: int | None = None
    #: Exponentially weighted average of observed diff sizes (bytes);
    #: initialised to the full object size until the first diff arrives.
    diff_bytes_avg: float = 0.0
    #: Nodes that fetched a copy since the last migration (approximate
    #: copyset, used by the Jackal-style LazyFlushing baseline).
    sharers: set[int] = field(default_factory=set)
    #: Remote nodes that wrote in the current barrier interval (used by the
    #: JiaJia-style BarrierMigration baseline); cleared at each barrier.
    interval_writers: set[int] = field(default_factory=set)
    #: Owner-transition count (LazyFlushing's max-5 bound).
    transitions: int = 0

    _DIFF_EWMA = 0.5  # weight of the newest observation

    def __post_init__(self) -> None:
        if self.object_bytes <= 0:
            raise ValueError(
                f"object_bytes must be positive, got {self.object_bytes}"
            )
        if self.diff_bytes_avg == 0.0:
            self.diff_bytes_avg = float(self.object_bytes)

    # -- recording ----------------------------------------------------------

    def record_remote_write(self, writer: int, diff_bytes: int) -> None:
        """A diff from ``writer`` was applied at the home."""
        if writer < 0:
            raise ValueError(f"remote writer id must be >= 0, got {writer}")
        self.remote_writes += 1
        if self.consecutive_writer == writer:
            self.consecutive_writes += 1
        else:
            self.consecutive_writer = writer
            self.consecutive_writes = 1
        self.last_writer = writer
        self.interval_writers.add(writer)
        self.diff_bytes_avg = (
            self._DIFF_EWMA * diff_bytes
            + (1.0 - self._DIFF_EWMA) * self.diff_bytes_avg
        )

    def record_home_write(self) -> bool:
        """The home node wrote its own copy (trapped home write fault).

        Returns True when this was an *exclusive* home write — no remote
        write intervened since an earlier home write (§4.1) — in which case
        ``E`` was incremented.
        """
        self.home_writes += 1
        exclusive = self.last_writer == HOME_WRITER
        if exclusive:
            self.exclusive_home_writes += 1
        self.last_writer = HOME_WRITER
        # A home write interleaves the remote-write chain (§3.3).
        self.consecutive_writes = 0
        self.consecutive_writer = None
        return exclusive

    def record_remote_read(self, reader: int) -> None:
        """An object request (fault-in) from ``reader`` reached the home."""
        self.remote_reads += 1
        self.sharers.add(reader)

    def record_home_read(self) -> None:
        """The home node read its own copy (trapped home read fault)."""
        self.home_reads += 1

    def record_redirections(self, hops: int) -> None:
        """An arriving request was forwarded ``hops`` times (accumulation)."""
        if hops < 0:
            raise ValueError(f"hops must be non-negative, got {hops}")
        self.redirections += hops

    def reset_after_migration(self, new_threshold_base: float) -> None:
        """Close feedback epoch ``i``: freeze the threshold, zero C/E/R."""
        self.migrations += 1
        self.transitions += 1
        self.threshold_base = new_threshold_base
        self.consecutive_writes = 0
        self.consecutive_writer = None
        self.exclusive_home_writes = 0
        self.redirections = 0
        self.sharers = set()
        # The new home's first write follows a remote epoch: not exclusive.
        self.last_writer = None
