"""The adaptive threshold update rule (Equation 2 of the paper).

Kept as a pure function so its invariants can be property-tested in
isolation from the protocol machinery:

* monotone non-decreasing in the negative feedback ``R`` (redirections);
* monotone non-increasing in the positive feedback ``E`` (exclusive home
  writes);
* never below ``t_init`` (the floor that keeps the protocol eager for
  initial data relocation, §4.2).
"""

from __future__ import annotations

from repro import _kernel

#: The paper's initial threshold ``T_init = 1`` (§4.2).
T_INIT = 1.0

#: The paper's feedback coefficient ``lambda = 1`` (§4.2).
LAMBDA = 1.0


def adaptive_threshold(
    base: float,
    redirections: int,
    exclusive_home_writes: int,
    alpha: float,
    lam: float = LAMBDA,
    t_init: float = T_INIT,
) -> float:
    """``T_i = max(T_{i-1} + lam * (R_i - alpha * E_i), T_init)``.

    ``base`` is ``T_{i-1}``, the threshold frozen at the previous migration;
    ``redirections``/``exclusive_home_writes`` are the feedback counters
    accumulated since then; ``alpha`` is the home access coefficient.
    """
    kernel_module = _kernel.kernel()
    if kernel_module is not None:
        # Same validation messages and IEEE-754 operation order in C.
        return kernel_module.adaptive_threshold(
            base, redirections, exclusive_home_writes, alpha, lam, t_init
        )
    return _py_adaptive_threshold(
        base, redirections, exclusive_home_writes, alpha, lam, t_init
    )


def _py_adaptive_threshold(
    base: float,
    redirections: int,
    exclusive_home_writes: int,
    alpha: float,
    lam: float = LAMBDA,
    t_init: float = T_INIT,
) -> float:
    """The pure-Python update rule (the compiled kernel's ground truth)."""
    if base < t_init:
        raise ValueError(f"threshold base {base} below floor {t_init}")
    if redirections < 0 or exclusive_home_writes < 0:
        raise ValueError(
            f"feedback counters must be non-negative, got "
            f"R={redirections}, E={exclusive_home_writes}"
        )
    if alpha <= 0:
        raise ValueError(f"alpha must be positive, got {alpha}")
    if lam < 0:
        raise ValueError(f"lambda must be non-negative, got {lam}")
    return max(base + lam * (redirections - alpha * exclusive_home_writes), t_init)
