"""Home migration policies.

Every policy answers one question at the home, on each arriving object
request: *should the home move to the requester now?*  The decision sees
the per-object :class:`~repro.core.state.ObjectAccessState` and the
object's home access coefficient ``alpha``.

Implemented policies:

=====================  =====================================================
:class:`NoMigration`    the paper's NoHM / NM baseline
:class:`FixedThreshold` the authors' previous protocol [7] (FT1, FT2, ...)
:class:`AdaptiveThreshold`  **the paper's contribution** (AT)
:class:`MigratingHome`  JUMP [6]: requester (with write intent) becomes home
:class:`LazyFlushing`   Jackal [15]: exclusive-owner transfer, max 5 moves
:class:`BarrierMigration`  JiaJia [9]: per-barrier single-writer detection
=====================  =====================================================

Policies are stateless and shareable across objects and runs; all mutable
numbers live in :class:`~repro.core.state.ObjectAccessState`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.core.state import ObjectAccessState
from repro.core.threshold import LAMBDA, T_INIT, adaptive_threshold


class MigrationPolicy(ABC):
    """Decision interface consulted by the home side of the DSM engine."""

    #: Short name used in reports ("NM", "FT1", "AT", ...).
    name: str = "policy"

    @abstractmethod
    def should_migrate(
        self,
        state: ObjectAccessState,
        requester: int,
        alpha: float,
        for_write: bool,
    ) -> bool:
        """Decide migration for an object request from ``requester``.

        ``for_write`` carries the requester's access intent (used only by
        the related-work baselines; the paper's protocols infer the writer
        from the diff stream instead).
        """

    def on_migrated(self, state: ObjectAccessState, alpha: float) -> None:
        """Close the feedback epoch after a migration decision fired."""
        state.reset_after_migration(state.threshold_base)

    def current_threshold(
        self, state: ObjectAccessState, alpha: float
    ) -> float | None:
        """The threshold this policy is applying, if it has one."""
        return None

    def initial_base(self) -> float:
        """``T_0``: the threshold base a fresh object monitor starts from.

        The paper sets ``T_0 = T_init`` (§4.2); policies with a floor
        above 1 must start new objects at that floor, or the update rule
        would be evaluated with a base below it.
        """
        return 1.0

    def wants_barrier_migration(self) -> bool:
        """Whether the barrier manager should run this policy at barriers."""
        return False

    def barrier_migrate_target(self, state: ObjectAccessState) -> int | None:
        """Barrier-time migration target (JiaJia-style policies only)."""
        return None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name}>"


class NoMigration(MigrationPolicy):
    """Never migrate (the paper's NoHM / NM baseline)."""

    name = "NM"

    def should_migrate(self, state, requester, alpha, for_write) -> bool:
        return False


class FixedThreshold(MigrationPolicy):
    """The authors' previous protocol [7]: migrate once the number of
    consecutive remote writes from one node reaches a fixed threshold and
    that node requests the object again.  ``FixedThreshold(1)`` and
    ``FixedThreshold(2)`` are the paper's FT1 and FT2."""

    def __init__(self, threshold: int):
        if threshold < 1:
            raise ValueError(f"fixed threshold must be >= 1, got {threshold}")
        self.threshold = threshold
        self.name = f"FT{threshold}"

    def should_migrate(self, state, requester, alpha, for_write) -> bool:
        return (
            state.consecutive_writer == requester
            and state.consecutive_writes >= self.threshold
        )

    def current_threshold(self, state, alpha) -> float:
        return float(self.threshold)


class AdaptiveThreshold(MigrationPolicy):
    """The paper's adaptive home migration protocol (§4).

    The per-object threshold ``T_i = max(T_{i-1} + lam*(R_i - alpha*E_i),
    T_init)`` is evaluated lazily from the feedback counters each time the
    condition is checked ("continuously adjusted"); when a migration fires,
    the evaluated threshold is frozen as the next epoch's base and the
    feedback counters reset.
    """

    name = "AT"

    def __init__(
        self,
        lam: float = LAMBDA,
        t_init: float = T_INIT,
        fixed_alpha: float | None = None,
    ):
        if t_init < 1:
            raise ValueError(f"t_init must be >= 1, got {t_init}")
        if fixed_alpha is not None and fixed_alpha <= 0:
            raise ValueError(f"fixed_alpha must be positive, got {fixed_alpha}")
        self.lam = lam
        self.t_init = t_init
        #: Ablation hook: override the Hockney-derived per-object alpha
        #: with a constant (None = use the paper's coefficient).
        self.fixed_alpha = fixed_alpha

    def should_migrate(self, state, requester, alpha, for_write) -> bool:
        if state.consecutive_writer != requester:
            return False
        return state.consecutive_writes >= self.current_threshold(state, alpha)

    def initial_base(self) -> float:
        """Fresh monitors start at this policy's floor (``T_0 = T_init``)."""
        return self.t_init

    def current_threshold(self, state, alpha) -> float:
        if self.fixed_alpha is not None:
            alpha = self.fixed_alpha
        return adaptive_threshold(
            base=state.threshold_base,
            redirections=state.redirections,
            exclusive_home_writes=state.exclusive_home_writes,
            alpha=alpha,
            lam=self.lam,
            t_init=self.t_init,
        )

    def on_migrated(self, state, alpha) -> None:
        frozen = self.current_threshold(state, alpha)
        state.reset_after_migration(frozen)


class AdaptiveThresholdDecay(AdaptiveThreshold):
    """Future-work heuristic (paper §6): adaptive threshold with feedback
    decay.

    The paper's protocol accumulates ``R`` and ``E`` forever within an
    epoch, so a burst of redirections long ago can keep the threshold
    high after the workload has changed.  This variant exponentially
    decays both feedback counters at every migration decision, making the
    threshold track the *recent* access pattern: after a phase change the
    stale feedback fades within ``~1/(1-gamma)`` decisions instead of
    persisting until the next migration.

    With ``gamma = 1`` it degenerates to the paper's protocol exactly.
    """

    name = "ATD"

    def __init__(
        self,
        gamma: float = 0.9,
        lam: float = LAMBDA,
        t_init: float = T_INIT,
    ):
        super().__init__(lam=lam, t_init=t_init)
        if not 0.0 < gamma <= 1.0:
            raise ValueError(f"gamma must be in (0, 1], got {gamma}")
        self.gamma = gamma
        #: Fractional carry of the decayed counters per object (the
        #: integer parts live in ObjectAccessState).
        self._fractions: dict[int, tuple[float, float]] = {}

    def should_migrate(self, state, requester, alpha, for_write) -> bool:
        self._decay(state)
        return super().should_migrate(state, requester, alpha, for_write)

    def _decay(self, state: ObjectAccessState) -> None:
        if self.gamma >= 1.0:
            return
        frac_r, frac_e = self._fractions.get(state.oid, (0.0, 0.0))
        exact_r = (state.redirections + frac_r) * self.gamma
        exact_e = (state.exclusive_home_writes + frac_e) * self.gamma
        state.redirections = int(exact_r)
        state.exclusive_home_writes = int(exact_e)
        self._fractions[state.oid] = (
            exact_r - state.redirections,
            exact_e - state.exclusive_home_writes,
        )

    def on_migrated(self, state, alpha) -> None:
        self._fractions.pop(state.oid, None)
        super().on_migrated(state, alpha)


class MigratingHome(MigrationPolicy):
    """JUMP's migrating-home protocol [6]: any node requesting the unit for
    write becomes the new home, ignoring access history.  The paper cites
    its pathology — sequential writers cause home thrashing."""

    name = "JUMP"

    def should_migrate(self, state, requester, alpha, for_write) -> bool:
        return for_write


class LazyFlushing(MigrationPolicy):
    """Jackal's lazy flushing [15], approximated at object granularity.

    The home moves to a writer that appears to be the *sole* sharer
    (no other node fetched a copy since the last ownership change), with
    the total number of ownership transitions bounded — Jackal caps it at
    five.  The copyset is the home's approximation (nodes seen requesting
    since the last migration), which matches Jackal's "not shared by any
    other node" test at the fidelity our simulator observes.
    """

    name = "LF"

    def __init__(self, max_transitions: int = 5):
        if max_transitions < 1:
            raise ValueError(
                f"max_transitions must be >= 1, got {max_transitions}"
            )
        self.max_transitions = max_transitions

    def should_migrate(self, state, requester, alpha, for_write) -> bool:
        if not for_write or state.transitions >= self.max_transitions:
            return False
        others = state.sharers - {requester}
        return not others


class BarrierMigration(MigrationPolicy):
    """JiaJia's barrier-time home migration [9].

    Never migrates on object requests; instead, at each barrier the barrier
    manager migrates every object written by exactly one (remote) process
    between the two barriers to that writer, piggybacking the new home
    locations on the barrier release messages (so no redirection traffic).
    """

    name = "JIAJIA"

    def should_migrate(self, state, requester, alpha, for_write) -> bool:
        return False

    def wants_barrier_migration(self) -> bool:
        return True

    def barrier_migrate_target(self, state: ObjectAccessState) -> int | None:
        if len(state.interval_writers) == 1:
            return next(iter(state.interval_writers))
        return None
