"""The paper's contribution: adaptive home migration.

* :mod:`repro.core.state` — the per-object access bookkeeping kept at an
  object's home (§3.3/§4.1: consecutive remote writes ``C``, exclusive home
  writes ``E``, redirected requests ``R``, lifetime access counts);
* :mod:`repro.core.coefficient` — the home access coefficient ``alpha``
  derived from the Hockney model (Appendix A);
* :mod:`repro.core.threshold` — the pure adaptive-threshold update rule
  ``T_i = max(T_{i-1} + lam*(R_i - alpha*E_i), T_init)`` (Equation 2);
* :mod:`repro.core.policies` — the policy family: the paper's
  :class:`~repro.core.policies.AdaptiveThreshold`, the authors' earlier
  :class:`~repro.core.policies.FixedThreshold`, and related-work baselines
  (JUMP :class:`~repro.core.policies.MigratingHome`, Jackal
  :class:`~repro.core.policies.LazyFlushing`, JiaJia
  :class:`~repro.core.policies.BarrierMigration`).
"""

from repro.core.coefficient import home_access_coefficient
from repro.core.policies import (
    AdaptiveThreshold,
    AdaptiveThresholdDecay,
    BarrierMigration,
    FixedThreshold,
    LazyFlushing,
    MigratingHome,
    MigrationPolicy,
    NoMigration,
)
from repro.core.state import HOME_WRITER, ObjectAccessState
from repro.core.threshold import adaptive_threshold

__all__ = [
    "AdaptiveThreshold",
    "AdaptiveThresholdDecay",
    "BarrierMigration",
    "FixedThreshold",
    "HOME_WRITER",
    "LazyFlushing",
    "MigratingHome",
    "MigrationPolicy",
    "NoMigration",
    "ObjectAccessState",
    "adaptive_threshold",
    "home_access_coefficient",
]
