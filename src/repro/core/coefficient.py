"""The home access coefficient ``alpha`` (paper §4.1 and Appendix A).

``alpha`` is "the overhead ratio of one eliminated pair of object fault-in
and diff propagation to one home redirection", considering communication
overhead only, under the Hockney model ``t(m) = t0 + m/r_inf`` with
half-peak length ``m_half = t0 * r_inf``.

One eliminated pair costs: the fault-in request (a unit-sized message,
``t(1)``), the object reply (``t(o)`` for an ``o``-byte object) and the diff
propagation (``t(d)`` for a ``d``-byte diff).  One home redirection costs a
round trip of unit-sized messages, ``2 t(1)``.  Expressing ``t`` through
``m_half`` (``t(m) = (m_half + m)/r_inf``)::

    alpha = (t(1) + t(o) + t(d)) / (2 t(1))
          = (3 m_half + 1 + o + d) / (2 (m_half + 1))
          ~ 3/2 + (o + d) / (2 m_half)        for m_half >> 1

The appendix of the available scan is partially garbled; this derivation is
reconstructed from its stated premises (``m_half >> 1``, ``o > d``) and is
unit-tested against the exact ratio of Hockney times.
"""

from __future__ import annotations

from repro.cluster.hockney import HockneyModel


def home_access_coefficient(
    object_bytes: float,
    diff_bytes: float,
    half_peak_bytes: float,
) -> float:
    """Exact ``alpha`` for an object of ``object_bytes`` and typical diff
    of ``diff_bytes`` on a network with half-peak length ``half_peak_bytes``.

    Always > 1/2; for any real network (``m_half >= 1``) it is >= ~3/2,
    i.e. one eliminated fault-in/diff pair is always worth more than one
    redirection — which is why migration pays off at all.
    """
    if object_bytes <= 0:
        raise ValueError(f"object size must be positive, got {object_bytes}")
    if diff_bytes < 0:
        raise ValueError(f"diff size must be non-negative, got {diff_bytes}")
    if half_peak_bytes <= 0:
        raise ValueError(
            f"half-peak length must be positive, got {half_peak_bytes}"
        )
    return (3 * half_peak_bytes + 1 + object_bytes + diff_bytes) / (
        2 * (half_peak_bytes + 1)
    )


def home_access_coefficient_for_model(
    object_bytes: float, diff_bytes: float, model: HockneyModel
) -> float:
    """Convenience wrapper taking a :class:`~repro.cluster.hockney.HockneyModel`."""
    return home_access_coefficient(
        object_bytes, diff_bytes, model.half_peak_bytes
    )
