"""Reproduction of "A Novel Adaptive Home Migration Protocol in Home-based DSM".

Fang, Wang, Zhu, Lau — IEEE CLUSTER 2004.

This package implements, from scratch and on top of a deterministic
discrete-event cluster simulator:

* a home-based lazy-release-consistency (HLRC) object DSM modelled on the
  Global Object Space (GOS) of the authors' distributed JVM, with twins,
  diffs, write notices, distributed locks and barriers
  (:mod:`repro.dsm`, :mod:`repro.memory`);
* the paper's contribution — the **adaptive-threshold home migration
  protocol** — together with the fixed-threshold protocol of the authors'
  earlier work and the related-work baselines (JUMP migrating-home, Jackal
  lazy flushing, JiaJia barrier migration) (:mod:`repro.core`);
* the four evaluation applications (ASP, SOR, Barnes–Hut N-body, TSP) and
  the synthetic single-writer benchmark of Figure 4 (:mod:`repro.apps`);
* a benchmark harness that regenerates Figures 2, 3 and 5 of the paper
  (:mod:`repro.bench`).

Quickstart::

    from repro import DistributedJVM, AdaptiveThreshold, FAST_ETHERNET
    from repro.apps import Sor

    jvm = DistributedJVM(nodes=8, comm_model=FAST_ETHERNET,
                         policy=AdaptiveThreshold())
    result = jvm.run(Sor(size=256, iterations=10))
    print(result.execution_time_us, result.stats.events["migration"])
"""

from repro.cluster.hockney import FAST_ETHERNET, GIGABIT, HockneyModel
from repro.core.policies import (
    AdaptiveThreshold,
    BarrierMigration,
    FixedThreshold,
    LazyFlushing,
    MigratingHome,
    MigrationPolicy,
    NoMigration,
)
from repro.dsm.redirection import (
    BroadcastMechanism,
    ForwardingPointerMechanism,
    HomeManagerMechanism,
    NotificationMechanism,
)
from repro.gos.jvm import DistributedJVM, RunResult
from repro.trace import TraceRecorder

__version__ = "1.0.0"

__all__ = [
    "AdaptiveThreshold",
    "BarrierMigration",
    "BroadcastMechanism",
    "DistributedJVM",
    "FAST_ETHERNET",
    "FixedThreshold",
    "ForwardingPointerMechanism",
    "GIGABIT",
    "HockneyModel",
    "HomeManagerMechanism",
    "LazyFlushing",
    "MigratingHome",
    "MigrationPolicy",
    "NoMigration",
    "NotificationMechanism",
    "RunResult",
    "TraceRecorder",
    "__version__",
]
