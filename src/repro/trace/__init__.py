"""Protocol tracing: structured event capture for analysis and debugging.

Attach a :class:`~repro.trace.recorder.TraceRecorder` to a
:class:`~repro.gos.space.GlobalObjectSpace` to capture per-object
protocol events — migrations (with the frozen threshold), redirections,
and the live adaptive-threshold evaluations with their C/E/R inputs —
timestamped in simulated time::

    from repro.trace import TraceRecorder
    tracer = TraceRecorder()
    gos = GlobalObjectSpace(8, FAST_ETHERNET, policy=AdaptiveThreshold(),
                            tracer=tracer)
    ... run ...
    for t, threshold in tracer.threshold_series(obj.oid):
        print(t, threshold)
"""

from repro.trace.events import TraceEvent
from repro.trace.recorder import TraceRecorder

__all__ = ["TraceEvent", "TraceRecorder"]
