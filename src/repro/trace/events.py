"""Trace event record."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

#: Event kinds the engine can emit.
KINDS = frozenset({"migration", "redirect", "decision", "ship"})


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped protocol event.

    ``detail`` carries kind-specific fields:

    * ``migration`` — ``old_home``, ``new_home``, ``frozen_threshold``
    * ``redirect``  — ``obsolete_home``, ``requester``
    * ``decision``  — ``requester``, ``threshold``, ``consecutive``,
      ``exclusive_home_writes``, ``redirections``, ``migrated``
    * ``ship``      — ``home``, ``requester``
    """

    time_us: float
    kind: str
    oid: int
    node: int
    detail: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown trace kind {self.kind!r}")
