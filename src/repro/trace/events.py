"""Trace event record."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

#: Event kinds the engine can emit.
KINDS = frozenset(
    {
        "migration",
        "redirect",
        "decision",
        "ship",
        "home_install",
        "diff_send",
        "diff_apply",
        "twin_create",
        "twin_free",
        "span_open",
        "span_close",
    }
)


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped protocol event.

    ``detail`` carries kind-specific fields:

    * ``migration`` — ``old_home``, ``new_home``, ``frozen_threshold``
    * ``redirect``  — ``obsolete_home``, ``requester``
    * ``decision``  — ``requester``, ``threshold``, ``consecutive``,
      ``exclusive_home_writes``, ``redirections``, ``migrated``,
      ``writer``, ``alpha``, ``base``
    * ``ship``      — ``home``, ``requester``
    * ``home_install`` — ``origin`` (``"initial"`` | ``"reply-mig"`` |
      ``"transfer"``), ``version``
    * ``diff_send``  — ``target``, ``size_bytes``, ``base_version``
    * ``diff_apply`` — ``writer``, ``size_bytes``, ``version_before``,
      ``version_after``
    * ``twin_create`` / ``twin_free`` — ``interval``
    * ``span_open``  — ``op`` (run-unique id), ``op_kind``, ``parent``
      (``op`` of the causing span or ``None``), plus kind-specific
      fields (``docs/PROTOCOL.md`` §14)
    * ``span_close`` — ``op``, ``op_kind``, plus kind-specific fields

    The first four kinds are the analysis timeline the bench reports
    consume; the next five are the conformance stream
    :class:`~repro.check.invariants.InvariantChecker` replays protocol
    invariants from (``docs/PROTOCOL.md`` §13); the span pair is the
    causal layer emitted by :class:`~repro.obs.spans.SpanTracer` that
    ``repro-bench analyze`` reconstructs operation trees from.
    """

    time_us: float
    kind: str
    oid: int
    node: int
    detail: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown trace kind {self.kind!r}")
