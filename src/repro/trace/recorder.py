"""Trace recorder and query helpers."""

from __future__ import annotations

from collections import deque
from typing import Iterable, MutableSequence

from repro.trace.events import KINDS, TraceEvent


class TraceRecorder:
    """Collects :class:`~repro.trace.events.TraceEvent` during a run.

    ``kinds`` restricts capture (decision events in particular are
    frequent); by default everything is recorded.

    ``max_events`` bounds memory: when set, the recorder keeps only the
    *newest* ``max_events`` events, dropping the oldest and counting the
    casualties in :attr:`dropped`.  Beware the interaction with
    :meth:`home_path`: the path is reconstructed by replaying migration
    events from ``initial_home``, so if early migrations were dropped the
    reconstructed path starts mid-journey (its first hop is no longer the
    true initial home).  Check ``dropped == 0`` — or use the streaming
    :class:`~repro.obs.export.JsonlTraceWriter`, which needs no bound —
    before trusting full-history queries on a bounded recorder.
    """

    def __init__(
        self,
        kinds: Iterable[str] | None = None,
        max_events: int | None = None,
    ):
        if kinds is None:
            self.kinds = frozenset(KINDS)
        else:
            self.kinds = frozenset(kinds)
            unknown = self.kinds - KINDS
            if unknown:
                raise ValueError(f"unknown trace kinds {sorted(unknown)}")
        if max_events is not None and max_events < 1:
            raise ValueError(f"max_events must be >= 1, got {max_events}")
        self.max_events = max_events
        self.dropped = 0
        #: Subset of :attr:`dropped` that were span events
        #: (``span_open``/``span_close``): losing one breaks the causal
        #: tree for its operation, so the JVM emits a WARN at run end
        #: when this is nonzero.
        self.dropped_spans = 0
        self.events: MutableSequence[TraceEvent] = (
            [] if max_events is None else deque(maxlen=max_events)
        )
        #: Online subscribers: each is called with every captured event,
        #: in record order, before the call site regains control.  The
        #: conformance layer's invariant checker consumes the stream this
        #: way (``repro.check.invariants``); subscribers must not mutate
        #: protocol state.
        self._listeners: list = []

    def subscribe(self, listener) -> None:
        """Register ``listener(event)`` to receive every captured event."""
        if not callable(listener):
            raise TypeError(f"listener must be callable, got {listener!r}")
        self._listeners.append(listener)

    def wants(self, kind: str) -> bool:
        """True when events of ``kind`` are captured (cheap hot-path guard)."""
        return kind in self.kinds

    def record(
        self, kind: str, time_us: float, oid: int, node: int, **detail
    ) -> None:
        """Append one event (silently skipped for filtered kinds)."""
        if kind in self.kinds:
            if (
                self.max_events is not None
                and len(self.events) == self.max_events
            ):
                self.dropped += 1  # deque(maxlen) evicts the oldest
                if self.events[0].kind in ("span_open", "span_close"):
                    self.dropped_spans += 1
            event = TraceEvent(
                time_us=time_us, kind=kind, oid=oid, node=node,
                detail=detail,
            )
            self.events.append(event)
            for listener in self._listeners:
                listener(event)

    # -- queries ------------------------------------------------------------

    def of_kind(self, kind: str, oid: int | None = None) -> list[TraceEvent]:
        """Events of one kind, optionally restricted to one object."""
        return [
            e for e in self.events
            if e.kind == kind and (oid is None or e.oid == oid)
        ]

    def migrations(self, oid: int | None = None) -> list[TraceEvent]:
        """Migration events, optionally for one object."""
        return self.of_kind("migration", oid)

    def home_path(self, oid: int, initial_home: int) -> list[int]:
        """The sequence of homes an object lived at.

        Complete only when every migration event survived capture: with
        ``kinds`` excluding ``"migration"`` the path is just
        ``[initial_home]``, and with a ``max_events`` bound that dropped
        early migrations the replay starts mid-journey (see the class
        docstring).
        """
        path = [initial_home]
        for event in self.migrations(oid):
            path.append(event.detail["new_home"])
        return path

    def threshold_series(self, oid: int) -> list[tuple[float, float]]:
        """(time, live threshold) at every migration decision for ``oid``."""
        return [
            (e.time_us, e.detail["threshold"])
            for e in self.of_kind("decision", oid)
            if e.detail.get("threshold") is not None
        ]

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<TraceRecorder {len(self.events)} events>"
