"""Trace recorder and query helpers."""

from __future__ import annotations

from typing import Iterable

from repro.trace.events import KINDS, TraceEvent


class TraceRecorder:
    """Collects :class:`~repro.trace.events.TraceEvent` during a run.

    ``kinds`` restricts capture (decision events in particular are
    frequent); by default everything is recorded.
    """

    def __init__(self, kinds: Iterable[str] | None = None):
        if kinds is None:
            self.kinds = frozenset(KINDS)
        else:
            self.kinds = frozenset(kinds)
            unknown = self.kinds - KINDS
            if unknown:
                raise ValueError(f"unknown trace kinds {sorted(unknown)}")
        self.events: list[TraceEvent] = []

    def wants(self, kind: str) -> bool:
        return kind in self.kinds

    def record(
        self, kind: str, time_us: float, oid: int, node: int, **detail
    ) -> None:
        if kind in self.kinds:
            self.events.append(
                TraceEvent(
                    time_us=time_us, kind=kind, oid=oid, node=node,
                    detail=detail,
                )
            )

    # -- queries ------------------------------------------------------------

    def of_kind(self, kind: str, oid: int | None = None) -> list[TraceEvent]:
        return [
            e for e in self.events
            if e.kind == kind and (oid is None or e.oid == oid)
        ]

    def migrations(self, oid: int | None = None) -> list[TraceEvent]:
        """Migration events, optionally for one object."""
        return self.of_kind("migration", oid)

    def home_path(self, oid: int, initial_home: int) -> list[int]:
        """The sequence of homes an object lived at."""
        path = [initial_home]
        for event in self.migrations(oid):
            path.append(event.detail["new_home"])
        return path

    def threshold_series(self, oid: int) -> list[tuple[float, float]]:
        """(time, live threshold) at every migration decision for ``oid``."""
        return [
            (e.time_us, e.detail["threshold"])
            for e in self.of_kind("decision", oid)
            if e.detail.get("threshold") is not None
        ]

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<TraceRecorder {len(self.events)} events>"
