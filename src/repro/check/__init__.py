"""Protocol conformance harness: fuzzer, oracle, invariants, mutations.

The generative correctness layer of the reproduction
(``docs/PROTOCOL.md`` §13).  A single integer seed expands into a
random data-race-free DSM program (:mod:`repro.check.fuzz`), which runs
on the simulated cluster while a runtime invariant checker replays
protocol state machines from the live trace stream
(:mod:`repro.check.invariants`); afterwards a sequential oracle replays
the execution log and compares every observation and the final heap
field-for-field (:mod:`repro.check.oracle`).  A mutation self-test
(:mod:`repro.check.mutations`) flips single protocol decisions and
asserts the harness catches each one.

Entry points: ``python -m repro.bench check --episodes N --seed S`` on
the command line, :func:`repro.check.runner.run_check` from code.
"""

from repro.check.fuzz import (
    ObjectSpec,
    ProgramSpec,
    SectionSpec,
    episode_seeds,
    generate_program,
)
from repro.check.invariants import InvariantChecker
from repro.check.mutations import MUTATION_NAMES, apply_mutation
from repro.check.runner import (
    CheckReport,
    EpisodeResult,
    run_check,
    run_episode,
    run_self_test,
)

__all__ = [
    "CheckReport",
    "EpisodeResult",
    "InvariantChecker",
    "MUTATION_NAMES",
    "ObjectSpec",
    "ProgramSpec",
    "SectionSpec",
    "apply_mutation",
    "episode_seeds",
    "generate_program",
    "run_check",
    "run_episode",
    "run_self_test",
]
