"""Seeded random DSM workload generator.

One integer seed deterministically expands into a complete
:class:`ProgramSpec`: a cluster size, a thread placement, a random
object graph, a migration policy with per-episode ``alpha``/``lambda``
draws, and a phase-structured program of reads, writes, lock-guarded
critical sections, method shipping and barriers.  The spec is executed
on the simulated DSM by :class:`repro.apps.fromspec.SpecProgram` and
checked by :mod:`repro.check.oracle` and :mod:`repro.check.invariants`.

Generated programs are **data-race-free by construction**, which is
what makes a sequential oracle possible under lazy release consistency
(LRC only constrains properly synchronized programs):

* the program is a sequence of *phases* separated by global barriers;
* within a phase every object is either assigned to a **lock group**
  (threads touch it only inside critical sections of that one lock) or
  **owned** by a single thread (unsynchronized single-writer access —
  the pattern that exercises home migration);
* critical sections never nest locks, so the lock graph is trivially
  deadlock-free, and every thread reaches every barrier.

Under that discipline any two conflicting accesses are ordered by
happens-before, so the simulator's execution order of operations on
each object is *the* legal order, and replaying the execution log
sequentially yields the unique legal final heap (see
``docs/PROTOCOL.md`` §13).

Operation vocabulary (tuples, JSON-serializable):

* ``("read", obj, idx)`` — observe ``obj[idx]``;
* ``("set", obj, idx, v)`` — ``obj[idx] = v``;
* ``("add", obj, idx, d)`` — ``obj[idx] += d``;
* ``("scale", obj, idx, a, b)`` — ``obj[idx] = a*obj[idx] + b``;
* ``("copy", obj, dst, src, d)`` — ``obj[dst] = obj[src] + d``;
* ``("ship_add", obj, idx, d)`` — method-ship ``+= d`` to the home,
  observing the result (only inside critical sections).

All constants are small exactly-representable floats and both the
application and the oracle evaluate the same numpy float64 expressions
in the same order, so comparisons are exact (bit-identical), not
approximate.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field

from repro.core.policies import (
    AdaptiveThreshold,
    AdaptiveThresholdDecay,
    BarrierMigration,
    FixedThreshold,
    LazyFlushing,
    MigratingHome,
    MigrationPolicy,
    NoMigration,
)
from repro.dsm.redirection import (
    BroadcastMechanism,
    ForwardingPointerMechanism,
    HomeManagerMechanism,
    NotificationMechanism,
)

#: Operation kinds a generated program may contain.
OP_KINDS = ("read", "set", "add", "scale", "copy", "ship_add")

#: Policy names the generator draws from (with their parameter menus).
POLICY_NAMES = ("NM", "FT", "AT", "ATD", "JUMP", "LF", "JIAJIA")

#: Mechanism names the generator draws from.
MECHANISM_NAMES = ("forwarding-pointer", "broadcast", "home-manager")


@dataclass
class ObjectSpec:
    """One shared array object: name, length, initial home, initial data."""

    name: str
    length: int
    home: int
    init: list[float]


@dataclass
class SectionSpec:
    """One access block of a thread.

    ``lock`` names the guarding lock (an index into
    ``ProgramSpec.lock_homes``), or is ``None`` for an *owned* block —
    unsynchronized accesses to objects this thread exclusively owns in
    the current phase.  ``ops`` is the operation list (tuples from the
    module vocabulary); ``compute_us`` is local CPU charged after the
    ops, varying the interleavings the scheduler produces.

    ``request`` optionally labels the section as one serving-tier
    request of that class (e.g. ``"get"``/``"put"``, see
    :mod:`repro.apps.serving`): the runner brackets the whole section —
    lock wait included — in a ``request`` causal span, which is what
    the SLO pipeline measures.  ``None`` (the default, and the only
    value the core fuzz generator emits) records no span.
    """

    lock: int | None
    ops: list[tuple]
    compute_us: float = 0.0
    request: str | None = None


@dataclass
class ProgramSpec:
    """A complete generated episode: cluster, policy, objects, program.

    ``phases[p][tid]`` is the ordered list of :class:`SectionSpec` thread
    ``tid`` executes in phase ``p``; every thread ends every phase at the
    global barrier.
    """

    seed: int
    nnodes: int
    nthreads: int
    placement: list[int]
    policy_name: str
    policy_params: dict
    mechanism_name: str
    manager_node: int
    lock_discipline: str
    objects: list[ObjectSpec] = field(default_factory=list)
    lock_homes: list[int] = field(default_factory=list)
    barrier_home: int = 0
    phases: list[list[list[SectionSpec]]] = field(default_factory=list)

    # -- construction of engine collaborators -----------------------------

    def build_policy(self) -> MigrationPolicy:
        """Instantiate the migration policy this spec names."""
        return build_policy(self.policy_name, self.policy_params)

    def build_mechanism(self) -> NotificationMechanism:
        """Instantiate the stale-hint notification mechanism."""
        return build_mechanism(self.mechanism_name, self.manager_node)

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-data form (JSON round-trippable via :meth:`from_dict`)."""
        return {
            "seed": self.seed,
            "nnodes": self.nnodes,
            "nthreads": self.nthreads,
            "placement": list(self.placement),
            "policy_name": self.policy_name,
            "policy_params": dict(self.policy_params),
            "mechanism_name": self.mechanism_name,
            "manager_node": self.manager_node,
            "lock_discipline": self.lock_discipline,
            "objects": [
                {
                    "name": o.name,
                    "length": o.length,
                    "home": o.home,
                    "init": list(o.init),
                }
                for o in self.objects
            ],
            "lock_homes": list(self.lock_homes),
            "barrier_home": self.barrier_home,
            "phases": [
                [
                    [
                        {
                            "lock": s.lock,
                            "ops": [list(op) for op in s.ops],
                            "compute_us": s.compute_us,
                            "request": s.request,
                        }
                        for s in sections
                    ]
                    for sections in phase
                ]
                for phase in self.phases
            ],
        }

    def to_json(self) -> str:
        """Canonical JSON text — byte-identical for equal specs."""
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )

    @classmethod
    def from_dict(cls, data: dict) -> "ProgramSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        return cls(
            seed=data["seed"],
            nnodes=data["nnodes"],
            nthreads=data["nthreads"],
            placement=list(data["placement"]),
            policy_name=data["policy_name"],
            policy_params=dict(data["policy_params"]),
            mechanism_name=data["mechanism_name"],
            manager_node=data["manager_node"],
            lock_discipline=data["lock_discipline"],
            objects=[
                ObjectSpec(
                    name=o["name"],
                    length=o["length"],
                    home=o["home"],
                    init=list(o["init"]),
                )
                for o in data["objects"]
            ],
            lock_homes=list(data["lock_homes"]),
            barrier_home=data["barrier_home"],
            phases=[
                [
                    [
                        SectionSpec(
                            lock=s["lock"],
                            ops=[tuple(op) for op in s["ops"]],
                            compute_us=s["compute_us"],
                            request=s.get("request"),
                        )
                        for s in sections
                    ]
                    for sections in phase
                ]
                for phase in data["phases"]
            ],
        )


def build_policy(name: str, params: dict) -> MigrationPolicy:
    """Instantiate a migration policy from its (name, params) draw."""
    if name == "NM":
        return NoMigration()
    if name == "FT":
        return FixedThreshold(params["threshold"])
    if name == "AT":
        return AdaptiveThreshold(
            lam=params.get("lam", 1.0),
            t_init=params.get("t_init", 1.0),
            fixed_alpha=params.get("fixed_alpha"),
        )
    if name == "ATD":
        return AdaptiveThresholdDecay(
            gamma=params.get("gamma", 0.9),
            lam=params.get("lam", 1.0),
            t_init=params.get("t_init", 1.0),
        )
    if name == "JUMP":
        return MigratingHome()
    if name == "LF":
        return LazyFlushing()
    if name == "JIAJIA":
        return BarrierMigration()
    raise ValueError(f"unknown policy name {name!r}")


def build_mechanism(name: str, manager_node: int = 0) -> NotificationMechanism:
    """Instantiate a notification mechanism from its name draw."""
    if name == "forwarding-pointer":
        return ForwardingPointerMechanism()
    if name == "broadcast":
        return BroadcastMechanism()
    if name == "home-manager":
        return HomeManagerMechanism(manager_node=manager_node)
    raise ValueError(f"unknown mechanism name {name!r}")


def _draw_policy(rng: random.Random) -> tuple[str, dict]:
    """Draw a (policy_name, params) pair, varying alpha/lambda per episode."""
    menu = [
        ("NM", {}),
        ("FT", {"threshold": 1}),
        ("FT", {"threshold": 2}),
        (
            "AT",
            {
                "lam": rng.choice([0.5, 1.0, 2.0]),
                "t_init": float(rng.choice([1, 2])),
            },
        ),
        ("AT", {"fixed_alpha": rng.choice([0.5, 1.0, 2.0])}),
        ("ATD", {"gamma": rng.choice([0.5, 0.9]), "lam": 1.0, "t_init": 1.0}),
        ("JUMP", {}),
        ("LF", {}),
        ("JIAJIA", {}),
    ]
    return rng.choice(menu)


def _draw_direct_op(
    rng: random.Random, obj: ObjectSpec
) -> tuple:
    """One direct (non-shipped) operation on ``obj``."""
    idx = rng.randrange(obj.length)
    r = rng.random()
    if r < 0.35:
        return ("read", obj.name, idx)
    if r < 0.55:
        return ("add", obj.name, idx, float(rng.randint(-6, 6)))
    if r < 0.70:
        return ("set", obj.name, idx, float(rng.randint(-16, 16)))
    if r < 0.85:
        return (
            "scale",
            obj.name,
            idx,
            rng.choice([0.5, 2.0, -1.0]),
            float(rng.randint(-4, 4)),
        )
    return (
        "copy",
        obj.name,
        idx,
        rng.randrange(obj.length),
        float(rng.randint(-2, 2)),
    )


#: Episode flavors :func:`generate_program` understands.
#:
#: * ``core`` — the original random access-pattern generator below;
#: * ``serving`` — a request-driven serving episode (Zipfian keyed
#:   store, affinity routing, hot-set shifts; see
#:   :func:`repro.apps.serving.generate_serving_program`);
#: * ``mixed`` — deterministically interleaves both: seeds with
#:   ``seed % 4 == 3`` expand to serving episodes, the rest to core
#:   ones, so long soak runs cover the serving paths without a separate
#:   job.
FLAVORS = ("core", "serving", "mixed")


def generate_program(seed: int, flavor: str = "core") -> ProgramSpec:
    """Expand one integer seed into a complete episode spec.

    Deterministic: equal (seed, flavor) pairs yield byte-identical
    :meth:`ProgramSpec.to_json` texts (the conformance CI relies on it).
    The default ``core`` flavor is unchanged from before flavors
    existed, so historical corpora stay replayable.
    """
    if flavor not in FLAVORS:
        raise ValueError(
            f"unknown flavor {flavor!r}; choose from {FLAVORS}"
        )
    if flavor == "serving" or (flavor == "mixed" and seed % 4 == 3):
        # Local import: repro.apps.serving imports the spec classes from
        # this module, so the dependency must stay one-way at import time.
        from repro.apps.serving import generate_serving_program

        return generate_serving_program(seed)
    rng = random.Random(seed)
    nnodes = rng.randint(2, 5)
    nthreads = rng.randint(2, 5)
    placement = [rng.randrange(nnodes) for _ in range(nthreads)]

    nobjects = rng.randint(1, 4)
    objects = [
        ObjectSpec(
            name=f"obj{i}",
            length=rng.randint(1, 6),
            home=rng.randrange(nnodes),
            init=[],
        )
        for i in range(nobjects)
    ]
    for obj in objects:
        obj.init = [float(rng.randint(-8, 8)) for _ in range(obj.length)]

    nlocks = rng.randint(1, 3)
    lock_homes = [rng.randrange(nnodes) for _ in range(nlocks)]
    barrier_home = rng.randrange(nnodes)

    policy_name, policy_params = _draw_policy(rng)
    mechanism_name = rng.choice(list(MECHANISM_NAMES))
    manager_node = rng.randrange(nnodes)
    lock_discipline = rng.choice(["fifo", "retry"])

    by_name = {obj.name: obj for obj in objects}
    phases: list[list[list[SectionSpec]]] = []
    for _phase in range(rng.randint(1, 3)):
        # Race freedom: each object is lock-guarded or single-owner
        # for the whole phase.
        owners: dict[str, int] = {}
        guards: dict[str, int] = {}
        for obj in objects:
            if rng.random() < 0.25:
                owners[obj.name] = rng.randrange(nthreads)
            else:
                guards[obj.name] = rng.randrange(nlocks)
        lock_groups: dict[int, list[str]] = {}
        for name, lock in guards.items():
            lock_groups.setdefault(lock, []).append(name)

        sections_by_tid: list[list[SectionSpec]] = []
        for tid in range(nthreads):
            blocks: list[SectionSpec] = []
            for _ in range(rng.randint(0, 3)):
                candidates = sorted(lock_groups)
                if not candidates:
                    break
                lock = rng.choice(candidates)
                group = lock_groups[lock]
                # Within one section an object is accessed either only
                # by shipping or only directly — never both, so the log
                # order equals the home's apply order.
                shipped = {n for n in group if rng.random() < 0.15}
                ops: list[tuple] = []
                for _ in range(rng.randint(1, 5)):
                    name = rng.choice(group)
                    obj = by_name[name]
                    if name in shipped:
                        ops.append(
                            (
                                "ship_add",
                                name,
                                rng.randrange(obj.length),
                                float(rng.randint(-4, 4)),
                            )
                        )
                    else:
                        ops.append(_draw_direct_op(rng, obj))
                blocks.append(
                    SectionSpec(
                        lock=lock,
                        ops=ops,
                        compute_us=rng.choice([0.0, 20.0, 100.0]),
                    )
                )
            for name, owner in owners.items():
                if owner != tid:
                    continue
                obj = by_name[name]
                for _ in range(rng.randint(1, 2)):
                    ops = [
                        _draw_direct_op(rng, obj)
                        for _ in range(rng.randint(1, 5))
                    ]
                    blocks.append(
                        SectionSpec(
                            lock=None,
                            ops=ops,
                            compute_us=rng.choice([0.0, 20.0]),
                        )
                    )
            rng.shuffle(blocks)
            sections_by_tid.append(blocks)
        phases.append(sections_by_tid)

    return ProgramSpec(
        seed=seed,
        nnodes=nnodes,
        nthreads=nthreads,
        placement=placement,
        policy_name=policy_name,
        policy_params=policy_params,
        mechanism_name=mechanism_name,
        manager_node=manager_node,
        lock_discipline=lock_discipline,
        objects=objects,
        lock_homes=lock_homes,
        barrier_home=barrier_home,
        phases=phases,
    )


def episode_seeds(base_seed: int, episodes: int) -> list[int]:
    """The per-episode seed sequence a `repro check` run derives from
    its base seed (deterministic, so corpora are reproducible)."""
    rng = random.Random(base_seed)
    return [rng.randrange(2**63) for _ in range(episodes)]
