"""Conformance episode runner: fuzz → simulate → oracle + invariants.

:func:`run_episode` executes one :class:`~repro.check.fuzz.ProgramSpec`
(generated from a seed or crafted) on a fresh simulated cluster with a
full trace subscription, then renders a verdict from three sources:

* the **runtime invariant checker** fed online from the trace stream;
* the **sequential oracle** replaying the execution log;
* any **crash** of the run itself (an engine exception).

:func:`run_check` drives a whole `repro check` session: ``episodes``
fuzzed episodes derived from one base seed, plus the mutation
self-test (each built-in mutation must be *caught*, and its crafted
episode must be *clean* when unmutated).  Verdicts serialize
canonically so equal seeds produce byte-identical reports.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.apps.fromspec import SpecProgram
from repro.check import oracle
from repro.check.fuzz import ProgramSpec, episode_seeds, generate_program
from repro.check.invariants import InvariantChecker
from repro.check.mutations import (
    MUTATION_NAMES,
    apply_mutation,
    mutation_spec,
)
from repro.cluster.hockney import FAST_ETHERNET
from repro.gos.jvm import DistributedJVM
from repro.trace.recorder import TraceRecorder


@dataclass
class EpisodeResult:
    """Everything one episode produced, verdict included."""

    seed: int
    spec: ProgramSpec
    oracle_violations: list[str] = field(default_factory=list)
    invariant_violations: list[str] = field(default_factory=list)
    run_error: str | None = None
    mutation: str | None = None
    ops: int = 0
    migrations: int = 0
    events: int = 0

    @property
    def ok(self) -> bool:
        """True when the episode ran clean: no violations, no crash."""
        return (
            not self.oracle_violations
            and not self.invariant_violations
            and self.run_error is None
        )

    @property
    def flagged(self) -> bool:
        """True when the checkers (not a crash alone) caught something."""
        return bool(self.oracle_violations or self.invariant_violations)

    def verdict(self) -> dict:
        """Canonical plain-data verdict (byte-stable via ``sort_keys``)."""
        return {
            "seed": self.seed,
            "mutation": self.mutation,
            "ok": self.ok,
            "oracle_violations": list(self.oracle_violations),
            "invariant_violations": list(self.invariant_violations),
            "run_error": self.run_error,
            "ops": self.ops,
            "migrations": self.migrations,
            "events": self.events,
        }


def run_episode(
    seed: int | None = None,
    spec: ProgramSpec | None = None,
    mutation: str | None = None,
    flavor: str = "core",
) -> EpisodeResult:
    """Run one episode and return its verdict.

    Pass ``seed`` to fuzz the program, or ``spec`` to run a crafted one
    (exactly one of the two).  ``mutation`` installs one of the built-in
    protocol mutations for the duration of the run.  ``flavor`` picks
    the generator family for fuzzed episodes (``core``, ``serving`` or
    ``mixed``; see :data:`repro.check.fuzz.FLAVORS`).
    """
    if (seed is None) == (spec is None):
        raise ValueError("pass exactly one of seed= or spec=")
    if spec is None:
        spec = generate_program(seed, flavor=flavor)
    program = SpecProgram(spec)
    tracer = TraceRecorder()
    checker = InvariantChecker(
        nnodes=spec.nnodes,
        policy_name=spec.policy_name,
        policy_params=spec.policy_params,
    )
    tracer.subscribe(checker.on_event)
    jvm = DistributedJVM(
        nodes=spec.nnodes,
        comm_model=FAST_ETHERNET,
        policy=spec.build_policy(),
        mechanism=spec.build_mechanism(),
        tracer=tracer,
        lock_discipline=spec.lock_discipline,
        seed=spec.seed,
    )
    final_heap = None
    run_error = None
    migrations = 0
    with apply_mutation(mutation):
        try:
            result = jvm.run(program, nthreads=spec.nthreads)
            final_heap = result.output
            migrations = result.migrations
        except Exception as exc:  # a mutated run may legally crash
            run_error = f"{type(exc).__name__}: {exc}"
    if run_error is None:
        # a crashed run legitimately leaves transfers in flight; only a
        # quiescent run owes the end-of-run invariants
        checker.finish()
    oracle_violations = oracle.check_episode(
        spec, program.execution_log, final_heap
    )
    return EpisodeResult(
        seed=spec.seed,
        spec=spec,
        oracle_violations=oracle_violations,
        invariant_violations=list(checker.violations),
        run_error=run_error,
        mutation=mutation,
        ops=len(program.execution_log),
        migrations=migrations,
        events=checker.events_seen,
    )


@dataclass
class CheckReport:
    """Aggregate verdict of a `repro check` session."""

    base_seed: int
    episodes: list[EpisodeResult] = field(default_factory=list)
    #: mutation name -> (clean unmutated, caught mutated)
    self_test: dict[str, tuple[bool, bool]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """Green iff every episode is clean and every mutation is caught."""
        return all(e.ok for e in self.episodes) and all(
            clean and caught for clean, caught in self.self_test.values()
        )

    def to_dict(self) -> dict:
        """Canonical plain-data report (the corpus summary artifact)."""
        return {
            "base_seed": self.base_seed,
            "ok": self.ok,
            "episodes": [e.verdict() for e in self.episodes],
            "self_test": {
                name: {"clean_unmutated": clean, "caught_mutated": caught}
                for name, (clean, caught) in sorted(self.self_test.items())
            },
        }

    def to_json(self) -> str:
        """Byte-stable JSON text of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=2)


def run_self_test() -> dict[str, tuple[bool, bool]]:
    """Prove the harness has teeth: each built-in mutation's crafted
    episode must be clean unmutated and flagged mutated."""
    outcome: dict[str, tuple[bool, bool]] = {}
    for name in MUTATION_NAMES:
        baseline = run_episode(spec=mutation_spec(name))
        mutated = run_episode(spec=mutation_spec(name), mutation=name)
        outcome[name] = (baseline.ok, mutated.flagged)
    return outcome


def run_check(
    episodes: int,
    base_seed: int,
    corpus_dir: str | Path | None = None,
    self_test: bool = True,
    progress=None,
    flavor: str = "core",
) -> CheckReport:
    """Run a full conformance session.

    ``corpus_dir`` (optional) receives one ``episode-<n>.json`` per
    episode — the program spec plus its verdict, enough to replay any
    failure offline — and a ``report.json`` summary.  ``progress`` is an
    optional callable invoked with each finished :class:`EpisodeResult`.
    ``flavor`` selects the episode generator family for every fuzzed
    episode of the session (``core``/``serving``/``mixed``).
    """
    report = CheckReport(base_seed=base_seed)
    out = Path(corpus_dir) if corpus_dir is not None else None
    if out is not None:
        out.mkdir(parents=True, exist_ok=True)
    for index, seed in enumerate(episode_seeds(base_seed, episodes)):
        result = run_episode(seed=seed, flavor=flavor)
        report.episodes.append(result)
        if out is not None:
            payload = {
                "index": index,
                "program": result.spec.to_dict(),
                "verdict": result.verdict(),
            }
            path = out / f"episode-{index:04d}.json"
            path.write_text(
                json.dumps(payload, sort_keys=True, indent=2) + "\n"
            )
        if progress is not None:
            progress(result)
    if self_test:
        report.self_test = run_self_test()
    if out is not None:
        (out / "report.json").write_text(report.to_json() + "\n")
    return report
