"""Sequential reference oracle for fuzzed episodes.

Replays the execution log a :class:`repro.apps.fromspec.SpecProgram`
produced against a plain (non-distributed) numpy heap and checks two
things field-for-field against the simulated run:

* every **read observation** — the value a ``read``/``ship_add`` saw on
  the DSM must equal the value the sequential replay computes at the
  same point in the log;
* the **final heap** — the authoritative home copy of every object
  after the run must equal the replayed heap.

Why replaying the log is sound: fuzzed programs are data-race-free by
construction (:mod:`repro.check.fuzz`), so all conflicting accesses to
one object are ordered by happens-before (lock tenure or barrier), and
the deterministic simulator's execution order — the order the log is
appended in — is a legal linearization of that partial order.  Under
LRC the unique legal outcome of a DRF program is the outcome of that
linearization.  The replay performs the *same numpy float64 operations
in the same order* as the application, so comparisons are exact
(``==``, with NaN == NaN), never epsilon-based: any discrepancy is a
coherence bug (a lost diff, a stale read, a mis-versioned home copy),
not floating-point noise.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.check.fuzz import ProgramSpec


def reference_heap(spec: "ProgramSpec") -> dict[str, np.ndarray]:
    """Fresh sequential heap holding every object's initial data."""
    return {
        o.name: np.array(o.init, dtype=np.float64) for o in spec.objects
    }


def apply_op(heap: dict[str, np.ndarray], op: tuple) -> float | None:
    """Apply one logged op to the reference heap.

    Returns the value the op observes (``read``/``ship_add``) or ``None``
    for pure writes.  Mirrors ``SpecProgram._exec_op`` expression for
    expression so results are bit-identical.
    """
    kind = op[0]
    arr = heap[op[1]]
    if kind == "read":
        return float(arr[op[2]])
    if kind == "set":
        arr[op[2]] = op[3]
        return None
    if kind == "add":
        arr[op[2]] += op[3]
        return None
    if kind == "scale":
        arr[op[2]] = op[3] * arr[op[2]] + op[4]
        return None
    if kind == "copy":
        arr[op[2]] = arr[op[3]] + op[4]
        return None
    if kind == "ship_add":
        arr[op[2]] += op[3]
        return float(arr[op[2]])
    raise ValueError(f"unknown op kind {kind!r}")


def _same_scalar(a: float, b: float) -> bool:
    """Exact equality, treating NaN as equal to NaN."""
    return a == b or (a != a and b != b)


def replay(
    spec: "ProgramSpec",
    log: list[tuple[int, tuple, float | None]],
) -> tuple[dict[str, np.ndarray], list[str]]:
    """Replay the execution log; return (final reference heap, violations).

    A violation is recorded for every read observation that disagrees
    with the sequential replay.
    """
    heap = reference_heap(spec)
    violations: list[str] = []
    for step, (tid, op, observed) in enumerate(log):
        expected = apply_op(heap, op)
        if expected is None:
            continue
        if observed is None or not _same_scalar(observed, expected):
            violations.append(
                f"oracle: step {step} thread {tid} {op[0]} on "
                f"{op[1]}[{op[2]}] observed {observed!r}, expected "
                f"{expected!r}"
            )
    return heap, violations


def check_episode(
    spec: "ProgramSpec",
    log: list[tuple[int, tuple, float | None]],
    final_heap: dict[str, np.ndarray] | None,
) -> list[str]:
    """Full oracle verdict for one episode.

    Replays the log (checking every observation) and then compares the
    simulated final heap — the home copies ``SpecProgram.finalize``
    gathered — field-for-field against the replayed reference heap.
    ``final_heap=None`` (the run crashed) skips the final comparison;
    the crash itself is reported by the episode runner.
    """
    heap, violations = replay(spec, log)
    if final_heap is None:
        return violations
    for o in spec.objects:
        ref = heap[o.name]
        actual = np.asarray(final_heap[o.name], dtype=np.float64)
        if np.array_equal(ref, actual, equal_nan=True):
            continue
        for i in range(o.length):
            if not _same_scalar(float(actual[i]), float(ref[i])):
                violations.append(
                    f"oracle: final heap {o.name}[{i}] simulated "
                    f"{float(actual[i])!r} != reference {float(ref[i])!r}"
                )
    return violations
