"""Mutation self-test: deliberately broken protocols the checker must catch.

Each mutation monkey-patches exactly one protocol decision for the
duration of one episode (context-managed, always restored) and comes
with a crafted :class:`~repro.check.fuzz.ProgramSpec` on which the bug
is guaranteed to manifest:

* ``skip_diff`` — the first diff application at a home is silently
  dropped (the version still bumps, the ack still flows).  A lost
  update: the **oracle** catches it as a stale read or a final-heap
  mismatch.
* ``misroute_redirect`` — an obsolete home redirects requesters back to
  *itself* instead of along the forwarding pointer.  The requester
  loops: the **invariant checker** catches the unbounded redirection
  chain (and the engine's ``MAX_REDIRECTIONS`` fuse eventually blows).
* ``threshold_off_by_one`` — the adaptive threshold is evaluated one
  too high.  Decision events stop replaying under the paper's update
  rule ``T_i = max(T_{i-1} + lam*(R_i - alpha*E_i), T_init)``: the
  **invariant checker** flags every decision.

The self-test (``repro check`` runs it by default) executes each
mutation's crafted episode twice — unmutated (must be clean) and
mutated (must be flagged) — proving the harness has teeth before its
green verdicts are trusted.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.check.fuzz import ObjectSpec, ProgramSpec, SectionSpec

#: Names of the built-in mutations, in self-test order.
MUTATION_NAMES = ("skip_diff", "misroute_redirect", "threshold_off_by_one")


@contextmanager
def _patched_skip_diff():
    """Drop the first diff application (module-global ``apply_diff``)."""
    import repro.dsm.protocol as protocol

    original = protocol.apply_diff
    state = {"skipped": False}

    def patched(payload, diff):
        if not state["skipped"]:
            state["skipped"] = True
            return None
        return original(payload, diff)

    protocol.apply_diff = patched
    try:
        yield
    finally:
        protocol.apply_diff = original


@contextmanager
def _patched_misroute_redirect():
    """Make obsolete homes redirect requesters back to themselves."""
    from repro.dsm.redirection import ForwardingPointerMechanism

    original = ForwardingPointerMechanism.miss_directive

    def patched(self, obsolete_home, oid):
        return {"kind": "redirect", "target": obsolete_home.node_id}

    ForwardingPointerMechanism.miss_directive = patched
    try:
        yield
    finally:
        ForwardingPointerMechanism.miss_directive = original


@contextmanager
def _patched_threshold_off_by_one():
    """Evaluate the adaptive threshold one higher than the rule says."""
    from repro.core.policies import AdaptiveThreshold

    original = AdaptiveThreshold.current_threshold

    def patched(self, state, alpha):
        return original(self, state, alpha) + 1.0

    AdaptiveThreshold.current_threshold = patched
    try:
        yield
    finally:
        AdaptiveThreshold.current_threshold = original


_PATCHES = {
    "skip_diff": _patched_skip_diff,
    "misroute_redirect": _patched_misroute_redirect,
    "threshold_off_by_one": _patched_threshold_off_by_one,
}


@contextmanager
def apply_mutation(name: str | None):
    """Context manager installing mutation ``name`` (``None`` = no-op)."""
    if name is None:
        yield
        return
    if name not in _PATCHES:
        raise ValueError(
            f"unknown mutation {name!r}; choose from {MUTATION_NAMES}"
        )
    with _PATCHES[name]():
        yield


def self_test_spec(policy_name: str, policy_params: dict) -> ProgramSpec:
    """A crafted episode that reliably exercises the mutated machinery.

    Three nodes, one thread each, one lock-guarded object homed at node
    0.  Phase 1 gives thread 1 three consecutive lock tenures (its node
    accumulates consecutive remote writes, so FT1/AT migrate the home to
    node 1); phase 2 has thread 2 fault the object through its now-stale
    hint (node 0), forcing a redirect.  Only ``add`` ops are used, so a
    single lost diff shifts the final sums.
    """
    adds_t1 = [
        SectionSpec(lock=0, ops=[("add", "obj0", 0, 1.0)]),
        SectionSpec(lock=0, ops=[("add", "obj0", 0, 2.0)]),
        SectionSpec(lock=0, ops=[("add", "obj0", 1, 4.0)]),
    ]
    return ProgramSpec(
        seed=-1,
        nnodes=3,
        nthreads=3,
        placement=[0, 1, 2],
        policy_name=policy_name,
        policy_params=policy_params,
        mechanism_name="forwarding-pointer",
        manager_node=0,
        lock_discipline="fifo",
        objects=[ObjectSpec(name="obj0", length=2, home=0, init=[0.0, 0.0])],
        lock_homes=[0],
        barrier_home=0,
        phases=[
            [
                [SectionSpec(lock=0, ops=[("read", "obj0", 0)])],
                adds_t1,
                [],
            ],
            [
                [SectionSpec(lock=0, ops=[("read", "obj0", 1)])],
                [],
                [
                    SectionSpec(lock=0, ops=[("add", "obj0", 0, 8.0)]),
                    SectionSpec(lock=0, ops=[("add", "obj0", 1, 16.0)]),
                ],
            ],
        ],
    )


def mutation_spec(name: str) -> ProgramSpec:
    """The crafted episode used to self-test mutation ``name``."""
    if name == "threshold_off_by_one":
        # needs decision events carrying an adaptive threshold
        return self_test_spec("AT", {"lam": 1.0, "t_init": 1.0})
    # skip_diff needs diffs; misroute needs a migration + stale hint:
    # FT1 provides both
    return self_test_spec("FT", {"threshold": 1})
