"""Runtime protocol invariant checker over the trace-event stream.

:class:`InvariantChecker` subscribes to a live
:class:`~repro.trace.recorder.TraceRecorder`
(``tracer.subscribe(checker.on_event)``) and replays protocol-level
state machines from the event stream *online*, flagging violations as
strings rather than raising (the episode runner aggregates them).

Checked invariants (``docs/PROTOCOL.md`` §13):

* **Single home** — exactly one home per object per virtual time:
  initial installs are unique; migrations leave the old home and arrive
  at the announced target; decisions, ships and diff applications only
  ever happen at the current home.
* **Threshold rule** — for the threshold policies, every decision
  event's threshold replays to
  ``T_i = max(T_{i-1} + lam*(R_i - alpha*E_i), T_init)`` from the
  event's own counters, never drops below ``T_init``, and the recorded
  migrate/stay outcome matches the rule.
* **Version discipline** — no diff is applied to a stale version: each
  application bumps the home version by exactly one and versions per
  object never regress (across migrations included).
* **Redirection** — forwarding chains are bounded (a requester may be
  redirected at most ``nnodes`` hops plus one per concurrent migration
  of the object before reaching a home) and the settled
  forwarding-pointer graph is acyclic at end of run.
* **Twin lifecycle** — twin freed ⇒ no later diff from that interval: a
  node sends diffs for an object only while it holds a live twin, twins
  are created/freed alternately, and none leak past the end of the run.
* **Diff conservation** — at end of run every sent diff was applied
  exactly once (acks guarantee it; forwarded diffs still apply once).
* **Span lifecycle** — every causal span (``span_open``/``span_close``,
  ``docs/PROTOCOL.md`` §14) closes exactly once with a matching
  ``op_kind``, op ids are run-unique, children never reference an
  unseen parent (no orphans), and no span is left open at end of run.

The checker is observation-only: it must never mutate protocol state.
"""

from __future__ import annotations

from repro.core.threshold import adaptive_threshold


class InvariantChecker:
    """Online invariant checker fed by trace events.

    ``nnodes`` bounds redirection chains; ``policy_name``/``policy_params``
    (the draw recorded in the episode's
    :class:`~repro.check.fuzz.ProgramSpec`) select which decision-rule
    checks apply.  Violations are collected in :attr:`violations`
    (capped at ``max_violations``; the overflow count is preserved so a
    runaway loop cannot exhaust memory).
    """

    def __init__(
        self,
        nnodes: int,
        policy_name: str = "NM",
        policy_params: dict | None = None,
        max_violations: int = 100,
    ):
        self.nnodes = nnodes
        self.policy_name = policy_name
        self.policy_params = dict(policy_params or {})
        self.max_violations = max_violations
        #: Violation messages, in detection order.
        self.violations: list[str] = []
        #: Violations dropped once the cap was hit.
        self.overflow = 0
        #: Events inspected so far.
        self.events_seen = 0
        self._finished = False
        # -- protocol state replayed from the stream ----------------------
        self._homes: dict[int, int] = {}
        self._in_flight: dict[int, tuple[int, int]] = {}
        self._pointers: dict[int, dict[int, int]] = {}
        self._versions: dict[int, int] = {}
        self._twins: set[tuple[int, int]] = set()
        self._chains: dict[tuple[int, int], tuple[int, int]] = {}
        self._migrations: dict[int, int] = {}
        self._diff_sends: dict[tuple[int, int], int] = {}
        self._diff_applies: dict[tuple[int, int], int] = {}
        #: op -> op_kind of spans currently open; ids ever seen opened.
        self._span_open: dict[int, str] = {}
        self._span_seen: set[int] = set()
        self._handlers = {
            "home_install": self._on_home_install,
            "migration": self._on_migration,
            "redirect": self._on_redirect,
            "decision": self._on_decision,
            "ship": self._on_ship,
            "diff_send": self._on_diff_send,
            "diff_apply": self._on_diff_apply,
            "twin_create": self._on_twin_create,
            "twin_free": self._on_twin_free,
            "span_open": self._on_span_open,
            "span_close": self._on_span_close,
        }

    # -- reporting ---------------------------------------------------------

    def _flag(self, message: str) -> None:
        """Record one violation (bounded)."""
        if len(self.violations) < self.max_violations:
            self.violations.append(message)
        else:
            self.overflow += 1

    @property
    def ok(self) -> bool:
        """True while no invariant has been violated."""
        return not self.violations and self.overflow == 0

    # -- event intake --------------------------------------------------------

    def on_event(self, event) -> None:
        """Trace-recorder subscriber entry point."""
        self.events_seen += 1
        handler = self._handlers.get(event.kind)
        if handler is not None:
            handler(event)

    # -- per-kind handlers ---------------------------------------------------

    def _on_home_install(self, event) -> None:
        oid, node, d = event.oid, event.node, event.detail
        origin = d.get("origin")
        version = d.get("version", 0)
        if origin == "initial":
            if oid in self._homes or oid in self._in_flight:
                self._flag(
                    f"invariant[single-home]: oid {oid} initial install at "
                    f"node {node} but a home already exists"
                )
            self._homes[oid] = node
        else:
            flight = self._in_flight.pop(oid, None)
            if flight is None:
                self._flag(
                    f"invariant[single-home]: oid {oid} installed at node "
                    f"{node} ({origin}) with no migration in flight"
                )
            elif flight[1] != node:
                self._flag(
                    f"invariant[single-home]: oid {oid} installed at node "
                    f"{node} but the migration targeted node {flight[1]}"
                )
            self._homes[oid] = node
            self._pointers.get(oid, {}).pop(node, None)
        if version < self._versions.get(oid, 0):
            self._flag(
                f"invariant[version]: oid {oid} home installed at node "
                f"{node} with stale version {version} < "
                f"{self._versions[oid]}"
            )
        self._versions[oid] = max(self._versions.get(oid, 0), version)

    def _on_migration(self, event) -> None:
        oid, d = event.oid, event.detail
        old, new = d["old_home"], d["new_home"]
        if self._homes.get(oid) != old:
            self._flag(
                f"invariant[single-home]: oid {oid} migrated from node "
                f"{old} which is not its home "
                f"(home={self._homes.get(oid)!r})"
            )
        self._homes.pop(oid, None)
        if oid in self._in_flight:
            self._flag(
                f"invariant[single-home]: oid {oid} migration {old}->{new} "
                f"started while transfer {self._in_flight[oid]} in flight"
            )
        self._in_flight[oid] = (old, new)
        self._pointers.setdefault(oid, {})[old] = new
        self._migrations[oid] = self._migrations.get(oid, 0) + 1

    def _on_redirect(self, event) -> None:
        oid, d = event.oid, event.detail
        requester = d["requester"]
        key = (oid, requester)
        migrations_now = self._migrations.get(oid, 0)
        count, migrations_at_start = self._chains.get(
            key, (0, migrations_now)
        )
        count += 1
        self._chains[key] = (count, migrations_at_start)
        bound = self.nnodes + (migrations_now - migrations_at_start) + 1
        if count > bound:
            self._flag(
                f"invariant[redirect-bound]: oid {oid} requester "
                f"{requester} redirected {count} times (bound {bound}) "
                f"without reaching a home"
            )

    def _reached_home(self, oid: int, requester: int) -> None:
        """A request from ``requester`` landed at a real home: its
        redirection chain (if any) terminated legally."""
        self._chains.pop((oid, requester), None)

    def _on_decision(self, event) -> None:
        oid, node, d = event.oid, event.node, event.detail
        if self._homes.get(oid) != node:
            self._flag(
                f"invariant[single-home]: oid {oid} migration decision at "
                f"node {node} which is not its home "
                f"(home={self._homes.get(oid)!r})"
            )
        self._reached_home(oid, d["requester"])
        threshold = d.get("threshold")
        name = self.policy_name
        params = self.policy_params
        if name in ("NM", "JIAJIA") and d.get("migrated"):
            self._flag(
                f"invariant[threshold]: oid {oid} migrated on a request "
                f"under policy {name}, which never does"
            )
        if threshold is None:
            return
        if name == "FT":
            expected = float(params.get("threshold", 1))
            if threshold != expected:
                self._flag(
                    f"invariant[threshold]: oid {oid} decision threshold "
                    f"{threshold} != fixed threshold {expected}"
                )
        elif name in ("AT", "ATD"):
            t_init = float(params.get("t_init", 1.0))
            alpha = params.get("fixed_alpha") or d["alpha"]
            expected = adaptive_threshold(
                base=d["base"],
                redirections=d["redirections"],
                exclusive_home_writes=d["exclusive_home_writes"],
                alpha=alpha,
                lam=params.get("lam", 1.0),
                t_init=t_init,
            )
            if threshold != expected:
                self._flag(
                    f"invariant[threshold]: oid {oid} decision threshold "
                    f"{threshold} != rule replay {expected} "
                    f"(base={d['base']}, R={d['redirections']}, "
                    f"E={d['exclusive_home_writes']}, alpha={alpha})"
                )
            if threshold < t_init:
                self._flag(
                    f"invariant[threshold]: oid {oid} threshold "
                    f"{threshold} below floor T_init={t_init}"
                )
        if name in ("FT", "AT", "ATD"):
            should = (
                d["writer"] == d["requester"]
                and d["consecutive"] >= threshold
            )
            if bool(d["migrated"]) != should:
                self._flag(
                    f"invariant[threshold]: oid {oid} decision outcome "
                    f"migrated={d['migrated']} disagrees with rule "
                    f"(writer={d['writer']}, requester={d['requester']}, "
                    f"C={d['consecutive']}, T={threshold})"
                )

    def _on_ship(self, event) -> None:
        oid, node, d = event.oid, event.node, event.detail
        if self._homes.get(oid) != node:
            self._flag(
                f"invariant[single-home]: oid {oid} method shipped to "
                f"node {node} which is not its home "
                f"(home={self._homes.get(oid)!r})"
            )
        self._reached_home(oid, d["requester"])

    def _on_diff_send(self, event) -> None:
        oid, node, d = event.oid, event.node, event.detail
        if (node, oid) not in self._twins:
            self._flag(
                f"invariant[twin]: node {node} sent a diff for oid {oid} "
                f"without a live twin (freed twin ⇒ no later diff)"
            )
        if not 0 <= d["target"] < self.nnodes:
            self._flag(
                f"invariant[twin]: node {node} sent a diff for oid {oid} "
                f"to out-of-cluster node {d['target']}"
            )
        key = (oid, node)
        self._diff_sends[key] = self._diff_sends.get(key, 0) + 1

    def _on_diff_apply(self, event) -> None:
        oid, node, d = event.oid, event.node, event.detail
        if self._homes.get(oid) != node:
            self._flag(
                f"invariant[single-home]: oid {oid} diff applied at node "
                f"{node} which is not its home "
                f"(home={self._homes.get(oid)!r})"
            )
        before, after = d["version_before"], d["version_after"]
        if after != before + 1:
            self._flag(
                f"invariant[version]: oid {oid} diff apply at node {node} "
                f"bumped version {before} -> {after} (expected +1)"
            )
        if before < self._versions.get(oid, 0):
            self._flag(
                f"invariant[version]: oid {oid} diff applied to stale "
                f"version {before} < {self._versions[oid]} at node {node}"
            )
        self._versions[oid] = max(self._versions.get(oid, 0), after)
        key = (oid, d["writer"])
        self._diff_applies[key] = self._diff_applies.get(key, 0) + 1

    def _on_twin_create(self, event) -> None:
        key = (event.node, event.oid)
        if key in self._twins:
            self._flag(
                f"invariant[twin]: node {event.node} created a twin for "
                f"oid {event.oid} while one is already live"
            )
        self._twins.add(key)

    def _on_twin_free(self, event) -> None:
        key = (event.node, event.oid)
        if key not in self._twins:
            self._flag(
                f"invariant[twin]: node {event.node} freed a twin for "
                f"oid {event.oid} with none live"
            )
        self._twins.discard(key)

    def _on_span_open(self, event) -> None:
        d = event.detail
        op, parent = d["op"], d.get("parent")
        if op in self._span_seen:
            self._flag(
                f"invariant[span]: op {op} ({d.get('op_kind')}) opened "
                f"twice — span ids must be run-unique"
            )
        self._span_seen.add(op)
        self._span_open[op] = d.get("op_kind")
        if parent is not None and parent not in self._span_seen:
            self._flag(
                f"invariant[span]: op {op} ({d.get('op_kind')}) claims "
                f"parent {parent} which was never opened (orphan child)"
            )

    def _on_span_close(self, event) -> None:
        d = event.detail
        op = d["op"]
        open_kind = self._span_open.pop(op, None)
        if open_kind is None:
            if op in self._span_seen:
                self._flag(
                    f"invariant[span]: op {op} ({d.get('op_kind')}) "
                    f"closed twice"
                )
            else:
                self._flag(
                    f"invariant[span]: op {op} ({d.get('op_kind')}) "
                    f"closed without a matching open"
                )
            return
        if open_kind != d.get("op_kind"):
            self._flag(
                f"invariant[span]: op {op} opened as {open_kind!r} but "
                f"closed as {d.get('op_kind')!r}"
            )

    # -- end-of-run checks ---------------------------------------------------

    def finish(self) -> list[str]:
        """Run end-of-run invariants; return all violations collected.

        Idempotent.  Call once the simulation is quiescent — a crashed
        run legitimately leaves transfers in flight, so the episode
        runner only calls this after a clean completion.
        """
        if self._finished:
            return self.violations
        self._finished = True
        for oid, flight in sorted(self._in_flight.items()):
            self._flag(
                f"invariant[single-home]: oid {oid} home transfer "
                f"{flight[0]}->{flight[1]} never completed"
            )
        for node, oid in sorted(self._twins):
            self._flag(
                f"invariant[twin]: node {node} leaked a live twin for "
                f"oid {oid} past end of run"
            )
        for op in sorted(self._span_open):
            self._flag(
                f"invariant[span]: op {op} ({self._span_open[op]}) "
                f"never closed (every span closes exactly once)"
            )
        keys = sorted(set(self._diff_sends) | set(self._diff_applies))
        for key in keys:
            sends = self._diff_sends.get(key, 0)
            applies = self._diff_applies.get(key, 0)
            if sends != applies:
                self._flag(
                    f"invariant[diff-conservation]: oid {key[0]} writer "
                    f"node {key[1]} sent {sends} diffs but {applies} "
                    f"were applied"
                )
        for oid, pointers in sorted(self._pointers.items()):
            if oid in self._in_flight:
                continue  # transient graph; already flagged above
            for start in sorted(pointers):
                node, hops = start, 0
                while node in pointers and hops <= self.nnodes:
                    node = pointers[node]
                    hops += 1
                if hops > self.nnodes:
                    self._flag(
                        f"invariant[redirect-acyclic]: oid {oid} settled "
                        f"forwarding pointers cycle from node {start}"
                    )
                    break
        return self.violations
