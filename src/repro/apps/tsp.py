"""TSP: branch-and-bound travelling salesman (§5.1).

Work decomposition follows the paper's parallel branch-and-bound: the
search tree is split into tasks by fixing the first two cities after the
start city; tasks are handed out through a shared work-queue counter
(guarded by a lock), and the incumbent best tour length lives in a shared
bound object that any thread may improve — a *multiple-writer* object, so
home migration gains nothing here (the paper's point for TSP).

The per-task depth-first search with pruning is pure local compute; its
visited-node count is charged to the simulated clock.
"""

from __future__ import annotations

from typing import Any, Generator

import numpy as np

from repro.apps.base import DsmApplication, FLOP_US, VerificationError

#: Charged cost per visited search node.
NODE_OPS = 6


def random_cities(n: int, seed: int) -> np.ndarray:
    """Euclidean distance matrix over ``n`` random points in [0, 100]^2."""
    rng = np.random.default_rng(seed)
    points = rng.uniform(0.0, 100.0, size=(n, 2))
    delta = points[:, None, :] - points[None, :, :]
    return np.sqrt((delta**2).sum(axis=2))


def nearest_neighbour_tour(dist: np.ndarray) -> float:
    """Greedy tour length — the initial incumbent bound."""
    n = dist.shape[0]
    unvisited = set(range(1, n))
    current, total = 0, 0.0
    while unvisited:
        nxt = min(unvisited, key=lambda c: dist[current, c])
        total += dist[current, nxt]
        unvisited.remove(nxt)
        current = nxt
    return total + dist[current, 0]


def held_karp_oracle(dist: np.ndarray) -> float:
    """Exact optimum via Held–Karp dynamic programming (n <= ~16)."""
    n = dist.shape[0]
    if n > 16:
        raise ValueError(f"Held-Karp oracle limited to 16 cities, got {n}")
    full = 1 << (n - 1)  # subsets of cities 1..n-1
    dp = np.full((full, n - 1), np.inf)
    for c in range(n - 1):
        dp[1 << c, c] = dist[0, c + 1]
    for mask in range(1, full):
        for last in range(n - 1):
            if not mask & (1 << last) or not np.isfinite(dp[mask, last]):
                continue
            base = dp[mask, last]
            for nxt in range(n - 1):
                if mask & (1 << nxt):
                    continue
                nmask = mask | (1 << nxt)
                cand = base + dist[last + 1, nxt + 1]
                if cand < dp[nmask, nxt]:
                    dp[nmask, nxt] = cand
    closing = dist[1:, 0]
    return float(np.min(dp[full - 1] + closing))


def _dfs(
    dist: np.ndarray,
    current: int,
    visited_mask: int,
    length: float,
    depth: int,
    n: int,
    best: float,
    min_out: np.ndarray,
) -> tuple[float, int]:
    """Depth-first branch and bound; returns (best found, nodes visited)."""
    visited = 1
    if depth == n:
        total = length + dist[current, 0]
        return (total if total < best else best), visited
    # Lower bound: current length + cheapest outgoing edge of each
    # remaining city (admissible, cheap to evaluate).
    remaining_bound = length
    for city in range(n):
        if not visited_mask & (1 << city):
            remaining_bound += min_out[city]
    if remaining_bound >= best:
        return best, visited
    for city in range(1, n):
        if visited_mask & (1 << city):
            continue
        nlen = length + dist[current, city]
        if nlen >= best:
            visited += 1
            continue
        best, sub = _dfs(
            dist, city, visited_mask | (1 << city), nlen, depth + 1, n,
            best, min_out,
        )
        visited += sub
    return best, visited


class Tsp(DsmApplication):
    """Parallel branch-and-bound TSP on the DSM."""

    name = "TSP"

    def __init__(self, cities: int = 10, seed: int = 17):
        if not 4 <= cities <= 16:
            raise ValueError(f"cities must be in [4, 16], got {cities}")
        self.ncities = cities
        self.seed = seed
        self.dist = random_cities(cities, seed)
        self._min_out = np.array(
            [
                np.min(np.delete(self.dist[c], c))
                for c in range(cities)
            ]
        )
        self._tasks = [
            (a, b)
            for a in range(1, cities)
            for b in range(1, cities)
            if a != b
        ]
        self.dist_rows: list = []
        self.bound_obj = None
        self.queue_obj = None
        self.queue_lock = None
        self.bound_lock = None

    def setup(self, gos, nthreads: int) -> None:
        # Distance matrix rows: read-only shared arrays, round-robin homes.
        self.dist_rows = []
        for i in range(self.ncities):
            row = gos.alloc_array(
                self.ncities, home=i % gos.nnodes, label=f"tsp-dist{i}"
            )
            gos.write_global(row, self.dist[i])
            self.dist_rows.append(row)
        self.bound_obj = gos.alloc_fields(("best",), home=0, label="tsp-bound")
        gos.write_global(
            self.bound_obj, np.array([nearest_neighbour_tour(self.dist)])
        )
        self.queue_obj = gos.alloc_fields(("next",), home=0, label="tsp-queue")
        self.queue_lock = gos.alloc_lock(home=0)
        self.bound_lock = gos.alloc_lock(home=0)

    def thread_body(self, ctx, tid: int) -> Generator[Any, Any, None]:
        n = self.ncities
        # Fetch the distance matrix once up front (read-only thereafter,
        # though Java-consistency re-faults it after each sync), with
        # batched fault-ins.
        yield from ctx.read_many(self.dist_rows)
        local_dist = np.empty((n, n))
        for i in range(n):
            row = yield from ctx.read(self.dist_rows[i])
            local_dist[i] = row
        while True:
            yield from ctx.acquire(self.queue_lock)
            queue = yield from ctx.write(self.queue_obj)
            task_idx = int(queue[0])
            queue[0] += 1
            yield from ctx.release(self.queue_lock)
            if task_idx >= len(self._tasks):
                break
            a, b = self._tasks[task_idx]
            bound_payload = yield from ctx.read(self.bound_obj)
            best = float(bound_payload[0])
            prefix_len = local_dist[0, a] + local_dist[a, b]
            mask = 1 | (1 << a) | (1 << b)
            found, visited = _dfs(
                local_dist, b, mask, prefix_len, 3, n, best, self._min_out
            )
            yield from ctx.compute(visited * NODE_OPS * FLOP_US)
            if found < best:
                yield from ctx.acquire(self.bound_lock)
                payload = yield from ctx.write(self.bound_obj)
                if found < payload[0]:
                    payload[0] = found
                yield from ctx.release(self.bound_lock)

    def finalize(self, gos) -> float:
        return float(gos.read_global(self.bound_obj)[0])

    def verify(self, output: Any) -> None:
        expected = held_karp_oracle(self.dist)
        if not np.isclose(output, expected, rtol=1e-9):
            raise VerificationError(
                f"TSP({self.ncities}) found {output}, optimum is {expected}"
            )
