"""The Figure-4 synthetic single-writer benchmark (§5.2).

Each working thread repeatedly wins ``lock0`` and then performs ``r``
consecutive synchronized updates of one shared counter object (the first
under ``lock0``, the remaining ``r-1`` each inside its own
``synchronized(lock1)`` block, exactly like the paper's code skeleton),
followed by some local computation.  ``r`` — the *repetition of the
single-writer pattern* — is the experiment knob: small ``r`` produces a
transient single-writer pattern (home migration should be inhibited),
large ``r`` a lasting one (migration should fire early).

Per the paper's §5.2 setup, the working threads run on nodes other than
node 0 (where the application — and thus both locks and the counter's
initial home — lives), so *all* synchronization is remote and every
performance difference comes from the home migration protocol.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.apps.base import DsmApplication, VerificationError


class SingleWriterBenchmark(DsmApplication):
    """Shared-counter benchmark parameterised by the repetition ``r``."""

    name = "synthetic"

    def __init__(
        self,
        total_updates: int = 1024,
        repetition: int = 4,
        compute_us: float = 50.0,
        workers_off_master: bool = True,
        use_shipping: bool = False,
        schedule: list[tuple[int, int]] | None = None,
    ):
        if total_updates < 1:
            raise ValueError(f"total_updates must be >= 1, got {total_updates}")
        if repetition < 1:
            raise ValueError(f"repetition must be >= 1, got {repetition}")
        if schedule is not None:
            if not schedule:
                raise ValueError("schedule must have at least one phase")
            for count, rep in schedule:
                if count < 1 or rep < 1:
                    raise ValueError(
                        f"schedule phases need positive counts and "
                        f"repetitions, got ({count}, {rep})"
                    )
            total_updates = sum(count for count, _rep in schedule)
        if compute_us < 0:
            raise ValueError(f"compute_us must be >= 0, got {compute_us}")
        self.total_updates = total_updates
        self.repetition = repetition
        self.compute_us = compute_us
        self.workers_off_master = workers_off_master
        #: Perform the counter updates via synchronized method shipping
        #: instead of fault-in + local write (the alternative GOS
        #: optimization; see the shipping ablation).
        self.use_shipping = use_shipping
        #: Optional phase schedule [(updates, repetition), ...]: the
        #: repetition changes once the counter passes each phase — the
        #: workload-phase-change scenario used to study threshold decay.
        self.schedule = schedule
        self.counter = None
        self.lock0 = None
        self.lock1 = None
        self._nthreads = 1

    def default_threads(self, nnodes: int) -> int:
        # Working threads live on the nodes other than the master (§5.2).
        return nnodes - 1 if (self.workers_off_master and nnodes > 1) else nnodes

    def placement(self, tid: int, nnodes: int, nthreads: int) -> int:
        if self.workers_off_master and nnodes > 1:
            return 1 + (tid % (nnodes - 1))
        return tid % nnodes

    def setup(self, gos, nthreads: int) -> None:
        self._nthreads = nthreads
        # The application starts on node 0: locks and the counter's
        # initial home are there.
        self.counter = gos.alloc_fields(("internal",), home=0, label="counter")
        self.lock0 = gos.alloc_lock(home=0)
        self.lock1 = gos.alloc_lock(home=0)

    def thread_body(self, ctx, tid: int) -> Generator[Any, Any, None]:
        # The paper's Figure-4 skeleton: the whole turn runs inside
        # synchronized(lock0) — the counter check, the first update, and
        # the r-1 further updates each inside its own synchronized(lock1)
        # block, so every update is flushed to the home at a
        # synchronization point and the r updates of a turn form one
        # uninterrupted run of consecutive remote writes.
        n = self.total_updates

        def _increment(payload):
            payload[0] += 1
            return float(payload[0])

        def _repetition_at(count: float) -> int:
            if self.schedule is None:
                return self.repetition
            boundary = 0
            for phase_count, phase_rep in self.schedule:
                boundary += phase_count
                if count < boundary:
                    return phase_rep
            return self.schedule[-1][1]

        while True:
            yield from ctx.acquire(self.lock0)
            payload = yield from ctx.read(self.counter)
            current = payload[0]
            if current >= n:
                yield from ctx.release(self.lock0)
                break
            r = _repetition_at(current)
            if self.use_shipping:
                yield from ctx.ship(self.counter, _increment)
            else:
                payload = yield from ctx.write(self.counter)
                payload[0] += 1
            for _ in range(r - 1):
                yield from ctx.acquire(self.lock1)
                if self.use_shipping:
                    yield from ctx.ship(self.counter, _increment)
                else:
                    payload = yield from ctx.write(self.counter)
                    payload[0] += 1
                yield from ctx.release(self.lock1)
            yield from ctx.release(self.lock0)
            # "Some simple arithmetic computation goes here."
            yield from ctx.compute(self.compute_us)

    def finalize(self, gos) -> int:
        return int(round(float(gos.read_global(self.counter)[0])))

    def verify(self, output: Any) -> None:
        # Turns are atomic under lock0, so the only overshoot is the last
        # turn's: the check can pass at n-1 and still add r updates.
        max_rep = (
            max(rep for _count, rep in self.schedule)
            if self.schedule is not None
            else self.repetition
        )
        low = self.total_updates
        high = self.total_updates + max_rep - 1
        if not low <= output <= high:
            raise VerificationError(
                f"counter finished at {output}, expected within "
                f"[{low}, {high}]"
            )
