"""Application framework for the simulated distributed JVM.

A :class:`DsmApplication` bundles:

* ``setup`` — allocate shared objects/locks/barriers on a fresh
  :class:`~repro.gos.space.GlobalObjectSpace` and initialise their data
  (initialisation is sequential and pre-parallel-phase, so it uses
  ``write_global`` and is not charged as DSM traffic — the paper measures
  the parallel phase);
* ``thread_body`` — the generator each simulated Java thread runs;
* ``finalize`` — gather the result from home copies after the run;
* ``verify`` — check the result against a sequential oracle (raises
  ``VerificationError`` on mismatch), so every benchmark run also proves
  protocol correctness.

Compute-time charging: thread bodies call ``ctx.compute(ops * FLOP_US)``.
``FLOP_US`` models a 2 GHz Pentium 4 running Kaffe-JIT-compiled Java: the
paper's JVM executes a simple shared-array element update in the order of
hundreds of cycles (JIT quality of the era plus the GOS's software access
checks), i.e. ~0.15 us per op — calibrated so the compute/communication
balance, and hence the Figure-2 speedup shapes, match the testbed.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Generator, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.gos.space import GlobalObjectSpace
    from repro.gos.thread import ThreadContext

#: Charged CPU time per simple array element operation (microseconds).
FLOP_US = 0.15


class VerificationError(AssertionError):
    """An application's DSM result disagreed with its sequential oracle."""


class DsmApplication(ABC):
    """One multi-threaded DSM application."""

    #: Report name ("ASP", "SOR", ...).
    name: str = "app"

    def default_threads(self, nnodes: int) -> int:
        """Threads to run when the caller does not say (paper: one per node)."""
        return nnodes

    def placement(self, tid: int, nnodes: int, nthreads: int) -> int:
        """Node hosting thread ``tid`` (default round-robin from node 0)."""
        return tid % nnodes

    @abstractmethod
    def setup(self, gos: "GlobalObjectSpace", nthreads: int) -> None:
        """Allocate and initialise shared state for a run with ``nthreads``."""

    @abstractmethod
    def thread_body(
        self, ctx: "ThreadContext", tid: int
    ) -> Generator[Any, Any, None]:
        """The generator executed by thread ``tid``."""

    def finalize(self, gos: "GlobalObjectSpace") -> Any:
        """Collect the application result from home copies after the run."""
        return None

    def verify(self, output: Any) -> None:
        """Check ``output`` against a sequential oracle; raise on mismatch."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name}>"
