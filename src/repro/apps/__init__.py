"""The paper's evaluation applications (§5.1) and synthetic benchmark (§5.2).

* :class:`~repro.apps.asp.Asp` — all-pairs shortest paths, parallel Floyd;
* :class:`~repro.apps.sor.Sor` — red-black successive over-relaxation;
* :class:`~repro.apps.nbody.NBody` — Barnes–Hut gravitational N-body;
* :class:`~repro.apps.tsp.Tsp` — branch-and-bound travelling salesman;
* :class:`~repro.apps.lu.Lu` — blocked LU factorisation (beyond-paper
  application with a shrinking single-writer pattern);
* :class:`~repro.apps.pingpong.TokenRing` — migratory-data ring
  (beyond-paper; the sequential-writers pathology of §2);
* :class:`~repro.apps.synthetic.SingleWriterBenchmark` — the Figure-4
  skeleton: a shared counter updated ``r`` consecutive times per lock
  tenure, the knob that sweeps transient vs lasting single-writer
  patterns;
* :class:`~repro.apps.fromspec.SpecProgram` — executes a fuzzed
  episode spec from :mod:`repro.check.fuzz` (the conformance harness's
  program-from-spec runner);
* :mod:`repro.apps.serving` — the request-driven serving workload tier:
  deterministic Zipfian request traffic over a keyed store
  (:class:`~repro.apps.serving.ServingSpec`), compiled to ProgramSpecs
  so every serving run is replayable and oracle-checkable.

All applications compute *real results* on the simulated DSM and are
verified against sequential oracles.
"""

from repro.apps.asp import Asp
from repro.apps.base import DsmApplication
from repro.apps.fromspec import SpecProgram
from repro.apps.lu import Lu
from repro.apps.nbody import NBody
from repro.apps.pingpong import TokenRing
from repro.apps.serving import ServingSpec, ZipfSampler, build_serving_program
from repro.apps.sor import Sor
from repro.apps.synthetic import SingleWriterBenchmark
from repro.apps.tsp import Tsp

__all__ = [
    "Asp",
    "DsmApplication",
    "Lu",
    "NBody",
    "ServingSpec",
    "SingleWriterBenchmark",
    "SpecProgram",
    "TokenRing",
    "Sor",
    "Tsp",
    "ZipfSampler",
    "build_serving_program",
]
