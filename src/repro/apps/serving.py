"""Request-driven serving workload over a keyed object store.

Every workload the repo had before this module is a SPLASH-style
scripted kernel.  The paper's adaptive home-migration rule, though, is
motivated by *emergent* single-writer access patterns — exactly what
request traffic over a keyed store produces when requests are routed by
key affinity.  This module generates that traffic deterministically and
compiles it down to an ordinary :class:`~repro.check.fuzz.ProgramSpec`,
so a serving episode inherits the whole conformance stack for free: it
runs through :class:`~repro.apps.fromspec.SpecProgram`, replays under
the sequential happens-before oracle, and streams through the runtime
invariant checker.

The traffic model (:class:`ServingSpec` is the knob set):

* **Key space** — ``keys`` shared arrays (``key000`` ...), homes drawn
  from the seeded RNG; each key is one "record" of ``key_len`` floats.
* **Zipfian popularity** — request keys are drawn by inverse-CDF
  sampling from a Zipf(``zipf_s``) distribution over popularity ranks
  (:class:`ZipfSampler`), so a small hot set takes most traffic.
* **Phase-shifting hot sets** — the rank→key mapping rotates by
  ``hot_shift`` keys at every barrier (:func:`hot_key`), moving the hot
  set to a different part of the key space each phase.  The shift is
  *exact* at barrier boundaries: phase ``p``'s ranking is phase 0's
  rotated by ``p * hot_shift``.
* **Affinity routing** — per phase, the hottest ``owned_fraction`` of
  keys are *owned*: all their requests route to one worker thread
  (unsynchronized single-writer access, the migration-friendly
  pattern), and ownership follows the hot set as it shifts.  The
  remaining keys are lock-guarded and served by round-robin frontends.
  This is precisely the data-race-freedom discipline of
  :mod:`repro.check.fuzz`, so the oracle stays sound.
* **Read/write mix** — each request is a ``get`` (reads) or ``put``
  (read-modify-write) drawn with probability ``read_fraction``.
* **Arrival processes** — ``open`` draws exponential inter-arrival
  gaps (a Poisson process in sim virtual time, mean ``mean_gap_us``)
  from the seeded RNG; ``closed`` waits a fixed ``think_us`` between
  requests.  Gaps compile to zero-op compute sections *before* each
  request, so measured request latency never includes think time.
* **Node churn** — per phase, ``churn`` of the nodes go *quiet*
  (:func:`quiet_nodes`, a deterministic rotating window): their worker
  threads issue no requests that phase and just meet the barrier,
  rejoining afterwards.  A quiet node keeps serving the homes and locks
  it hosts — churn models frontends going idle, not failures.

Determinism: expansion is a pure function of the spec (one
``random.Random(seed)`` stream), so equal specs yield byte-identical
``ProgramSpec.to_json()`` texts on every backend, and the simulated run
is bit-identical under python and compiled kernels.
"""

from __future__ import annotations

import bisect
import math
import random
from dataclasses import dataclass, field

from repro.check.fuzz import ObjectSpec, ProgramSpec, SectionSpec, _draw_policy

__all__ = [
    "REQUEST_CLASSES",
    "ServingSpec",
    "ZipfSampler",
    "build_serving_program",
    "generate_serving_program",
    "hot_key",
    "phase_hot_keys",
    "quiet_nodes",
    "zipf_weights",
]

#: Request classes a serving episode emits (the span/report categories).
REQUEST_CLASSES = ("get", "put")


def zipf_weights(nkeys: int, s: float) -> list[float]:
    """Normalized Zipf(s) probability of each popularity rank.

    ``weights[r]`` is the probability of rank ``r`` (0 = hottest):
    ``(r+1)^-s / H(nkeys, s)`` with the generalized harmonic number as
    normalizer.  Pure and deterministic — the property tests compare the
    sampler against exactly these weights.
    """
    if nkeys < 1:
        raise ValueError(f"nkeys must be >= 1, got {nkeys}")
    raw = [(rank + 1) ** -s for rank in range(nkeys)]
    total = math.fsum(raw)
    return [w / total for w in raw]


class ZipfSampler:
    """Inverse-CDF sampler over Zipf popularity ranks.

    ``rank_of(u)`` maps a uniform draw ``u`` in [0, 1) to the rank whose
    CDF interval contains it, so the measure of ``u`` values yielding
    rank ``r`` is exactly ``weights[r]`` — sampling accuracy reduces to
    the RNG's uniformity, with no rejection loop to perturb the stream.
    """

    def __init__(self, nkeys: int, s: float) -> None:
        self.nkeys = nkeys
        self.s = s
        self.weights = zipf_weights(nkeys, s)
        acc = 0.0
        self.cdf: list[float] = []
        for w in self.weights:
            acc += w
            self.cdf.append(acc)
        self.cdf[-1] = 1.0  # guard float summation shortfall at the tail

    def rank_of(self, u: float) -> int:
        """The popularity rank whose CDF interval contains ``u``."""
        if not 0.0 <= u < 1.0:
            raise ValueError(f"u must be in [0, 1), got {u!r}")
        return bisect.bisect_right(self.cdf, u)

    def sample(self, rng: random.Random) -> int:
        """Draw one rank from the RNG (one ``rng.random()`` consumed)."""
        return self.rank_of(rng.random())


def hot_key(rank: int, phase: int, shift: int, nkeys: int) -> int:
    """The key holding popularity ``rank`` during ``phase``.

    Phase 0 maps rank ``r`` to key ``r``; every later phase rotates the
    mapping by ``shift`` keys, so the hot set walks the key space and
    the rotation is exact at each barrier: ``hot_key(r, p+1) ==
    hot_key(r, p) + shift (mod nkeys)``.
    """
    return (rank + phase * shift) % nkeys


def phase_hot_keys(nkeys: int, phase: int, shift: int) -> list[int]:
    """Keys in popularity order (hottest first) for one phase."""
    return [hot_key(rank, phase, shift, nkeys) for rank in range(nkeys)]


def quiet_nodes(nnodes: int, phase: int, churn: float) -> set[int]:
    """The nodes whose workers go quiet in ``phase``.

    A rotating window of ``floor(churn * nnodes)`` node ids (capped at
    ``nnodes - 1`` so at least one node always serves traffic): phase
    ``p`` silences nodes ``p*count .. p*count+count-1 (mod nnodes)``.
    Deterministic and closed-form, so tests can predict churn exactly.
    """
    count = min(int(churn * nnodes), nnodes - 1)
    if count <= 0:
        return set()
    return {(phase * count + i) % nnodes for i in range(count)}


@dataclass(frozen=True)
class ServingSpec:
    """Declarative description of one serving episode.

    Compiles to a :class:`~repro.check.fuzz.ProgramSpec` via
    :func:`build_serving_program`; every field is plain data so the spec
    is picklable and JSON-friendly.  ``threads`` defaults to one worker
    per node; ``hot_shift`` defaults to a quarter of the key space.
    ``topology`` and ``release_fanout`` are run-level knobs (PROTOCOL.md
    §15) consumed by :mod:`repro.bench.serving`, not by the program
    expansion.
    """

    seed: int = 0
    nodes: int = 8
    threads: int | None = None
    keys: int = 48
    key_len: int = 4
    zipf_s: float = 0.99
    phases: int = 3
    requests_per_thread: int = 8
    read_fraction: float = 0.7
    hot_shift: int | None = None
    owned_fraction: float = 0.5
    arrival: str = "open"
    mean_gap_us: float = 50.0
    think_us: float = 20.0
    churn: float = 0.0
    policy: str = "AT"
    policy_params: dict = field(default_factory=dict)
    mechanism: str = "forwarding-pointer"
    lock_discipline: str = "fifo"
    topology: str | None = None
    release_fanout: int | None = None

    @property
    def nthreads(self) -> int:
        """Worker thread count (defaults to one per node)."""
        return self.threads if self.threads is not None else self.nodes

    @property
    def shift(self) -> int:
        """Effective per-phase hot-set rotation (defaults to keys/4)."""
        if self.hot_shift is not None:
            return self.hot_shift
        return max(1, self.keys // 4)


def _request_ops(
    rng: random.Random, key_name: str, key_len: int, cls: str
) -> list[tuple]:
    """The op list of one request, in the fuzz module's op vocabulary."""
    idx = rng.randrange(key_len)
    if cls == "get":
        ops: list[tuple] = [("read", key_name, idx)]
        if rng.random() < 0.3:
            ops.append(("read", key_name, rng.randrange(key_len)))
        return ops
    # put: read-modify-write with an exactly-representable update
    r = rng.random()
    if r < 0.5:
        op = ("add", key_name, idx, float(rng.randint(-6, 6)))
    elif r < 0.8:
        op = ("set", key_name, idx, float(rng.randint(-16, 16)))
    else:
        op = ("scale", key_name, idx, rng.choice([0.5, 2.0, -1.0]),
              float(rng.randint(-4, 4)))
    return [op, ("read", key_name, idx)]


def _arrival_gap(rng: random.Random, spec: ServingSpec) -> float:
    """One inter-arrival think time in virtual microseconds.

    ``open`` draws from the exponential distribution (Poisson arrivals)
    via inverse transform of one uniform; ``closed`` is the constant
    think time of a closed-loop client.
    """
    if spec.arrival == "open":
        return -spec.mean_gap_us * math.log1p(-rng.random())
    return spec.think_us


def build_serving_program(spec: ServingSpec) -> ProgramSpec:
    """Compile a :class:`ServingSpec` into a runnable ProgramSpec.

    Deterministic: one ``random.Random(spec.seed)`` stream drives every
    draw (homes, initial data, request keys, classes, gaps), so equal
    specs produce byte-identical ``to_json()`` texts regardless of
    backend or host.
    """
    if spec.arrival not in ("open", "closed"):
        raise ValueError(
            f"arrival must be 'open' or 'closed', got {spec.arrival!r}"
        )
    if not 0.0 <= spec.churn < 1.0:
        raise ValueError(f"churn must be in [0, 1), got {spec.churn!r}")
    rng = random.Random(spec.seed)
    nthreads = spec.nthreads
    placement = [t % spec.nodes for t in range(nthreads)]

    objects = [
        ObjectSpec(
            name=f"key{i:03d}",
            length=spec.key_len,
            home=rng.randrange(spec.nodes),
            init=[float(rng.randint(0, 8)) for _ in range(spec.key_len)],
        )
        for i in range(spec.keys)
    ]
    nlocks = max(1, min(8, spec.keys // 2))
    lock_homes = [rng.randrange(spec.nodes) for _ in range(nlocks)]
    barrier_home = rng.randrange(spec.nodes)
    manager_node = rng.randrange(spec.nodes)

    sampler = ZipfSampler(spec.keys, spec.zipf_s)
    owned_count = min(spec.keys, int(round(spec.owned_fraction * spec.keys)))
    phases: list[list[list[SectionSpec]]] = []
    for phase in range(spec.phases):
        quiet = quiet_nodes(spec.nodes, phase, spec.churn)
        active = [t for t in range(nthreads) if placement[t] not in quiet]
        if not active:  # churn may never silence every worker
            active = list(range(nthreads))
        ranking = phase_hot_keys(spec.keys, phase, spec.shift)
        # The hottest keys are affinity-owned; ownership rotates with
        # the hot set, so a shift re-homes the hot traffic (the single
        # writer moves — exactly the pattern Eq-2 migration rewards).
        owner_of = {
            ranking[rank]: active[rank % len(active)]
            for rank in range(owned_count)
        }
        sections_by_tid: list[list[SectionSpec]] = [[] for _ in range(nthreads)]
        total = len(active) * spec.requests_per_thread
        for i in range(total):
            rank = sampler.sample(rng)
            key = ranking[rank]
            cls = "get" if rng.random() < spec.read_fraction else "put"
            tid = owner_of.get(key, active[i % len(active)])
            gap = _arrival_gap(rng, spec)
            obj = objects[key]
            ops = _request_ops(rng, obj.name, obj.length, cls)
            lock = None if key in owner_of else key % nlocks
            if gap > 0.0:
                sections_by_tid[tid].append(
                    SectionSpec(lock=None, ops=[], compute_us=gap)
                )
            sections_by_tid[tid].append(
                SectionSpec(lock=lock, ops=ops, request=cls)
            )
        phases.append(sections_by_tid)

    return ProgramSpec(
        seed=spec.seed,
        nnodes=spec.nodes,
        nthreads=nthreads,
        placement=placement,
        policy_name=spec.policy,
        policy_params=dict(spec.policy_params),
        mechanism_name=spec.mechanism,
        manager_node=manager_node,
        lock_discipline=spec.lock_discipline,
        objects=objects,
        lock_homes=lock_homes,
        barrier_home=barrier_home,
        phases=phases,
    )


def generate_serving_program(seed: int) -> ProgramSpec:
    """Fuzz one small serving-flavoured episode from an integer seed.

    The conformance harness's serving flavor
    (``generate_program(seed, flavor="serving")``): a compact cluster
    (2–5 nodes) with randomly drawn traffic knobs, policy and mechanism,
    small enough for the oracle yet covering churn, both arrival modes
    and every policy family.  Deterministic per seed.
    """
    rng = random.Random(seed)
    nodes = rng.randint(2, 5)
    policy_name, policy_params = _draw_policy(rng)
    spec = ServingSpec(
        seed=seed,
        nodes=nodes,
        keys=rng.randint(3, 8),
        key_len=rng.randint(1, 4),
        zipf_s=rng.choice([0.6, 0.99, 1.2]),
        phases=rng.randint(1, 3),
        requests_per_thread=rng.randint(2, 5),
        read_fraction=rng.choice([0.5, 0.7, 0.9]),
        owned_fraction=rng.choice([0.25, 0.5, 0.75]),
        arrival=rng.choice(["open", "closed"]),
        mean_gap_us=rng.choice([20.0, 50.0]),
        think_us=rng.choice([0.0, 20.0]),
        churn=rng.choice([0.0, 0.0, 0.25]),
        policy=policy_name,
        policy_params=policy_params,
        mechanism=rng.choice(
            ["forwarding-pointer", "broadcast", "home-manager"]
        ),
        lock_discipline=rng.choice(["fifo", "retry"]),
    )
    return build_serving_program(spec)
