"""ASP: all-pairs shortest paths with parallel Floyd's algorithm (§5.1).

The distance matrix of an ``n``-node graph is stored as ``n`` row array
objects — "in Java, a 2-D matrix is implemented as an array object whose
elements are also array objects" — with homes distributed round-robin
(load balance), which generally differ from the writing nodes; home
migration then relocates each row to its owner.

Iteration ``k``: every thread reads pivot row ``k`` and relaxes its own
block of rows through node ``k``; a barrier separates iterations (row
``k`` itself is provably stable during iteration ``k``).
"""

from __future__ import annotations

from typing import Any, Generator

import numpy as np

from repro.apps.base import DsmApplication, FLOP_US, VerificationError
from repro.gos.distribution import block_range, round_robin_homes

#: Edge weights are uniform ints in [1, MAX_WEIGHT].
MAX_WEIGHT = 100
#: "Infinity" for missing edges, safely below float64 overflow when added.
INF = 1e15


def random_graph(n: int, seed: int, density: float = 0.3) -> np.ndarray:
    """Random directed weighted graph as a dense matrix with INF holes."""
    rng = np.random.default_rng(seed)
    weights = rng.integers(1, MAX_WEIGHT + 1, size=(n, n)).astype(np.float64)
    mask = rng.random((n, n)) < density
    matrix = np.where(mask, weights, INF)
    np.fill_diagonal(matrix, 0.0)
    return matrix


def floyd_oracle(matrix: np.ndarray) -> np.ndarray:
    """Sequential vectorised Floyd–Warshall."""
    dist = matrix.copy()
    n = dist.shape[0]
    for k in range(n):
        np.minimum(dist, dist[:, k, None] + dist[None, k, :], out=dist)
    return dist


class Asp(DsmApplication):
    """Parallel Floyd's algorithm on the DSM."""

    name = "ASP"

    def __init__(self, size: int = 256, seed: int = 7, density: float = 0.3):
        if size < 2:
            raise ValueError(f"graph must have >= 2 nodes, got {size}")
        self.size = size
        self.seed = seed
        self.density = density
        self.rows: list = []
        self.barrier_handle = None
        self._nthreads = 0
        self._initial = random_graph(size, seed, density)

    def setup(self, gos, nthreads: int) -> None:
        self._nthreads = nthreads
        self.rows = []
        for i, home in enumerate(round_robin_homes(self.size, gos.nnodes)):
            row = gos.alloc_array(self.size, home=home, label=f"asp-row{i}")
            gos.write_global(row, self._initial[i])
            self.rows.append(row)
        self.barrier_handle = gos.alloc_barrier(parties=nthreads, home=0)

    def thread_body(self, ctx, tid: int) -> Generator[Any, Any, None]:
        mine = block_range(tid, self.size, self._nthreads)
        n = self.size
        for k in range(n):
            pivot = yield from ctx.read(self.rows[k])
            for i in mine:
                if i == k:
                    continue
                row = yield from ctx.write(self.rows[i])
                np.minimum(row, row[k] + pivot, out=row)
            # 2 ops (add + min) per element of each owned row.
            yield from ctx.compute(2 * len(mine) * n * FLOP_US)
            yield from ctx.barrier(self.barrier_handle)

    def finalize(self, gos) -> np.ndarray:
        return np.vstack([gos.read_global(row) for row in self.rows])

    def verify(self, output: Any) -> None:
        expected = floyd_oracle(self._initial)
        if not np.array_equal(output, expected):
            bad = int(np.count_nonzero(output != expected))
            raise VerificationError(
                f"ASP({self.size}) result differs from Floyd oracle in "
                f"{bad} entries"
            )
