"""Program-from-spec runner: execute a fuzzed episode on the DSM.

:class:`SpecProgram` turns a :class:`repro.check.fuzz.ProgramSpec` into
a :class:`~repro.apps.base.DsmApplication`: threads walk their section
lists, acquiring the guarding lock around each critical section and
hitting the global barrier between phases.

Every executed operation is appended to :attr:`SpecProgram.execution_log`
as ``(tid, op, observed)`` at the moment its effect lands.  The
simulator is single-threaded and deterministic, so the append order *is*
the execution order — and because fuzzed programs are data-race-free by
construction (see :mod:`repro.check.fuzz`), that order is a legal
happens-before linearization per object.  :mod:`repro.check.oracle`
replays the log sequentially against a plain numpy heap to compute the
legal final state.
"""

from __future__ import annotations

from typing import Any, Generator, TYPE_CHECKING

import numpy as np

from repro.apps.base import DsmApplication

if TYPE_CHECKING:  # pragma: no cover
    from repro.check.fuzz import ProgramSpec
    from repro.gos.space import GlobalObjectSpace
    from repro.gos.thread import ThreadContext


def _ship_add_fn(idx: int, delta: float):
    """Build the shipped method for a ``ship_add`` op: add-and-observe."""

    def fn(payload: np.ndarray) -> float:
        payload[idx] += delta
        return float(payload[idx])

    return fn


class SpecProgram(DsmApplication):
    """One fuzzed episode as a runnable DSM application."""

    name = "fromspec"

    def __init__(self, spec: "ProgramSpec"):
        self.spec = spec
        self.objects: dict[str, Any] = {}
        self.locks: list[Any] = []
        self.barrier_handle: Any = None
        #: ``(tid, op, observed)`` triples in execution order; the
        #: oracle's input.  ``observed`` is the value a ``read`` or
        #: ``ship_add`` saw, ``None`` for pure writes.
        self.execution_log: list[tuple[int, tuple, float | None]] = []

    def default_threads(self, nnodes: int) -> int:
        """The spec fixes its own thread count."""
        return self.spec.nthreads

    def placement(self, tid: int, nnodes: int, nthreads: int) -> int:
        """The spec fixes its own thread placement."""
        return self.spec.placement[tid]

    def setup(self, gos: "GlobalObjectSpace", nthreads: int) -> None:
        """Allocate the spec's objects/locks/barrier and seed initial data."""
        spec = self.spec
        for o in spec.objects:
            obj = gos.alloc_array(o.length, home=o.home, label=o.name)
            gos.write_global(obj, np.array(o.init, dtype=np.float64))
            self.objects[o.name] = obj
        self.locks = [gos.alloc_lock(home=h) for h in spec.lock_homes]
        self.barrier_handle = gos.alloc_barrier(
            parties=spec.nthreads, home=spec.barrier_home
        )

    def thread_body(
        self, ctx: "ThreadContext", tid: int
    ) -> Generator[Any, Any, None]:
        """Walk this thread's sections phase by phase, logging each op.

        Sections labelled with a ``request`` class are bracketed in a
        ``request`` causal span (lock wait included), feeding the SLO
        pipeline; spans read only the tracer and virtual clock, so the
        simulated schedule and results are bit-identical with tracing
        on or off.
        """
        log = self.execution_log
        spans = getattr(ctx.gos, "spans", None)
        sp = spans if (spans is not None and spans.enabled) else None
        for epoch, phase in enumerate(self.spec.phases):
            for section in phase[tid]:
                req = None
                if sp is not None and section.request is not None:
                    oid = (
                        self.objects[section.ops[0][1]].oid
                        if section.ops else -1
                    )
                    req = sp.open(
                        "request", ctx.now, oid, ctx.node,
                        cls=section.request, epoch=epoch, tid=tid,
                    )
                if section.lock is not None:
                    yield from ctx.acquire(self.locks[section.lock])
                for op in section.ops:
                    observed = yield from self._exec_op(ctx, op)
                    log.append((tid, op, observed))
                if section.compute_us:
                    yield from ctx.compute(section.compute_us)
                if section.lock is not None:
                    yield from ctx.release(self.locks[section.lock])
                if req is not None:
                    sp.close(req, "request", ctx.now, oid, ctx.node)
            yield from ctx.barrier(self.barrier_handle)

    def _exec_op(
        self, ctx: "ThreadContext", op: tuple
    ) -> Generator[Any, Any, float | None]:
        """Execute one op; return what it observed (None for writes).

        Each op re-traps through ``ctx.read``/``ctx.write``, so access
        states and twins evolve exactly as the protocol dictates; the
        arithmetic mirrors :func:`repro.check.oracle.apply_op` expression
        for expression (same numpy float64 ops, same order), which is
        what makes exact comparison sound.
        """
        kind = op[0]
        obj = self.objects[op[1]]
        if kind == "read":
            payload = yield from ctx.read(obj)
            return float(payload[op[2]])
        if kind == "set":
            payload = yield from ctx.write(obj)
            payload[op[2]] = op[3]
            return None
        if kind == "add":
            payload = yield from ctx.write(obj)
            payload[op[2]] += op[3]
            return None
        if kind == "scale":
            payload = yield from ctx.write(obj)
            payload[op[2]] = op[3] * payload[op[2]] + op[4]
            return None
        if kind == "copy":
            payload = yield from ctx.write(obj)
            payload[op[2]] = payload[op[3]] + op[4]
            return None
        if kind == "ship_add":
            result = yield from ctx.ship(obj, _ship_add_fn(op[2], op[3]))
            return float(result)
        raise ValueError(f"unknown op kind {kind!r}")

    def finalize(self, gos: "GlobalObjectSpace") -> dict[str, np.ndarray]:
        """Authoritative (home) copy of every object after the run."""
        return {
            name: gos.read_global(obj) for name, obj in self.objects.items()
        }
