"""SOR: red-black successive over-relaxation on a 2-D grid (§5.1).

The grid is stored row-per-object (round-robin initial homes).  Threads
own contiguous row blocks; one iteration is two half-sweeps (red then
black elements), each followed by a barrier.  Updating a row needs its
two neighbour rows, so only the *boundary* rows of each block are ever
fetched remotely once homes have migrated to the owners — the paper's
textbook lasting-single-writer workload.
"""

from __future__ import annotations

from typing import Any, Generator

import numpy as np

from repro.apps.base import DsmApplication, FLOP_US, VerificationError
from repro.gos.distribution import block_range, round_robin_homes

#: Over-relaxation factor.
OMEGA = 1.25


def _relax_row(
    row: np.ndarray, above: np.ndarray, below: np.ndarray, i: int, color: int
) -> None:
    """Red-black update of interior elements of row ``i`` with ``(i+j) % 2
    == color`` in place."""
    n = row.shape[0]
    start = 1 + ((color - (i + 1)) % 2)
    # Strided slices select exactly the elements ``arange(start, n-1, 2)``
    # would, but as views: no index array and no gather copies.  The
    # arithmetic (operands, order, dtype) is unchanged, so results stay
    # bit-identical; on the short rows this code runs on, the per-call
    # numpy overhead was most of the kernel's cost.
    sl = slice(start, n - 1, 2)
    stencil = 0.25 * (
        above[sl] + below[sl] + row[start - 1 : n - 2 : 2] + row[start + 1 : n : 2]
    )
    row[sl] += OMEGA * (stencil - row[sl])


def sor_oracle(grid: np.ndarray, iterations: int) -> np.ndarray:
    """Sequential red-black SOR, identical arithmetic and sweep order."""
    g = grid.copy()
    rows = g.shape[0]
    for _ in range(iterations):
        for color in (0, 1):
            for i in range(1, rows - 1):
                _relax_row(g[i], g[i - 1], g[i + 1], i, color)
    return g


class Sor(DsmApplication):
    """Red-black SOR over a ``(size+2) x (size+2)`` grid, row objects."""

    name = "SOR"

    def __init__(self, size: int = 256, iterations: int = 10, seed: int = 11):
        if size < 1:
            raise ValueError(f"grid size must be >= 1, got {size}")
        if iterations < 1:
            raise ValueError(f"iterations must be >= 1, got {iterations}")
        self.size = size
        self.iterations = iterations
        self.seed = seed
        rng = np.random.default_rng(seed)
        self._initial = rng.random((size + 2, size + 2))
        self.rows: list = []
        self.barrier_handle = None
        self._nthreads = 0

    def setup(self, gos, nthreads: int) -> None:
        self._nthreads = nthreads
        total_rows = self.size + 2
        self.rows = []
        for i, home in enumerate(round_robin_homes(total_rows, gos.nnodes)):
            row = gos.alloc_array(self.size + 2, home=home, label=f"sor-row{i}")
            gos.write_global(row, self._initial[i])
            self.rows.append(row)
        self.barrier_handle = gos.alloc_barrier(parties=nthreads, home=0)

    def thread_body(self, ctx, tid: int) -> Generator[Any, Any, None]:
        # Threads own interior rows 1..size; boundary rows 0 and size+1
        # are fixed Dirichlet boundaries.
        interior = block_range(tid, self.size, self._nthreads)
        mine = [1 + i for i in interior]
        width = self.size + 2
        for _ in range(self.iterations):
            for color in (0, 1):
                for i in mine:
                    above = yield from ctx.read(self.rows[i - 1])
                    below = yield from ctx.read(self.rows[i + 1])
                    row = yield from ctx.write(self.rows[i])
                    _relax_row(row, above, below, i, color)
                # ~6 ops per updated element; half the row per sweep.
                yield from ctx.compute(6 * len(mine) * (width // 2) * FLOP_US)
                yield from ctx.barrier(self.barrier_handle)

    def finalize(self, gos) -> np.ndarray:
        return np.vstack([gos.read_global(row) for row in self.rows])

    def verify(self, output: Any) -> None:
        expected = sor_oracle(self._initial, self.iterations)
        if not np.allclose(output, expected, rtol=1e-12, atol=1e-12):
            bad = int(np.count_nonzero(~np.isclose(output, expected)))
            raise VerificationError(
                f"SOR({self.size}x{self.size}, {self.iterations} iters) "
                f"differs from oracle in {bad} entries"
            )
