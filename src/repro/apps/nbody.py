"""NBody: 2-D Barnes–Hut gravitational simulation (§5.1).

Every body is one shared fields object ``(x, y, vx, vy, m)``.  Each step,
every thread reads all body positions, builds a *local* Barnes–Hut
quadtree (pure local compute), evaluates accelerations for its owned
block with the theta-criterion, and writes the new state of its own
bodies; a barrier separates steps.

This is the paper's "little single-writer benefit" workload: although
each body is written by exactly one thread, every thread re-reads every
body every step, so relocating homes to the writers saves only the
writers' own fault-in/diff pairs — a small fraction of the traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator

import numpy as np

from repro.apps.base import DsmApplication, FLOP_US, VerificationError
from repro.gos.distribution import block_range

#: Gravitational constant (arbitrary units) and softening length.
G = 1.0
SOFTENING = 0.05
#: Barnes–Hut opening angle.
THETA = 0.5
#: Integration time step.
DT = 0.01

#: Charged cost per tree insertion step and per accepted interaction.
INSERT_OPS = 8
INTERACT_OPS = 12

#: Cells smaller than this stop splitting: coincident (or nearly so)
#: bodies aggregate into one leaf instead of recursing forever.
MIN_HALF = 1e-9


@dataclass
class _Node:
    """One quadtree cell: square [cx +/- half, cy +/- half]."""

    cx: float
    cy: float
    half: float
    mass: float = 0.0
    mx: float = 0.0  # mass-weighted position sums
    my: float = 0.0
    body: int = -1  # body index if leaf with one body, else -1
    children: list | None = None

    def quadrant(self, x: float, y: float) -> int:
        return (1 if x >= self.cx else 0) | (2 if y >= self.cy else 0)

    def child_for(self, quadrant: int) -> "_Node":
        assert self.children is not None
        if self.children[quadrant] is None:
            q = self.half / 2.0
            cx = self.cx + (q if quadrant & 1 else -q)
            cy = self.cy + (q if quadrant & 2 else -q)
            self.children[quadrant] = _Node(cx, cy, q)
        return self.children[quadrant]


class BarnesHutTree:
    """A 2-D Barnes–Hut quadtree over point masses."""

    def __init__(self, xs: np.ndarray, ys: np.ndarray, ms: np.ndarray):
        if xs.size == 0:
            raise ValueError("cannot build a tree over zero bodies")
        cx = (float(xs.min()) + float(xs.max())) / 2.0
        cy = (float(ys.min()) + float(ys.max())) / 2.0
        half = max(
            float(xs.max()) - float(xs.min()), float(ys.max()) - float(ys.min())
        ) / 2.0 + 1e-9
        self.root = _Node(cx, cy, half)
        self.xs, self.ys, self.ms = xs, ys, ms
        self.operations = 0  # inserts + interactions, for compute charging
        for i in range(xs.size):
            self._insert(self.root, i)

    def _insert(self, node: _Node, i: int) -> None:
        x, y, m = float(self.xs[i]), float(self.ys[i]), float(self.ms[i])
        while True:
            self.operations += 1
            node.mass += m
            node.mx += m * x
            node.my += m * y
            if node.children is None:
                if node.body < 0 and node.mass == m:
                    node.body = i  # first body in an empty leaf
                    return
                if node.half < MIN_HALF:
                    # coincident bodies: aggregate in this leaf (mass and
                    # center of mass already updated above)
                    return
                # occupied leaf: split and reinsert the resident
                resident = node.body
                node.body = -1
                node.children = [None, None, None, None]
                if resident >= 0:
                    rx, ry = float(self.xs[resident]), float(self.ys[resident])
                    child = node.child_for(node.quadrant(rx, ry))
                    child.mass += float(self.ms[resident])
                    child.mx += float(self.ms[resident]) * rx
                    child.my += float(self.ms[resident]) * ry
                    child.body = resident
            node = node.child_for(node.quadrant(x, y))

    def acceleration(self, i: int) -> tuple[float, float]:
        """Barnes–Hut acceleration on body ``i`` with opening angle THETA."""
        x, y = float(self.xs[i]), float(self.ys[i])
        ax = ay = 0.0
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node is None or node.mass == 0.0:
                continue
            if node.body == i and node.children is None:
                continue
            px = node.mx / node.mass
            py = node.my / node.mass
            dx = px - x
            dy = py - y
            dist2 = dx * dx + dy * dy + SOFTENING * SOFTENING
            if node.children is None or (
                (2.0 * node.half) ** 2 < THETA * THETA * dist2
            ):
                self.operations += 1
                inv = 1.0 / (dist2 * np.sqrt(dist2))
                ax += G * node.mass * dx * inv
                ay += G * node.mass * dy * inv
            else:
                stack.extend(node.children)
        return ax, ay


def nbody_oracle(
    xs: np.ndarray,
    ys: np.ndarray,
    vxs: np.ndarray,
    vys: np.ndarray,
    ms: np.ndarray,
    steps: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Sequential Barnes–Hut with identical arithmetic and update order."""
    xs, ys, vxs, vys = xs.copy(), ys.copy(), vxs.copy(), vys.copy()
    for _ in range(steps):
        tree = BarnesHutTree(xs, ys, ms)
        axs = np.empty_like(xs)
        ays = np.empty_like(ys)
        for i in range(xs.size):
            axs[i], ays[i] = tree.acceleration(i)
        vxs += DT * axs
        vys += DT * ays
        xs += DT * vxs
        ys += DT * vys
    return xs, ys


class NBody(DsmApplication):
    """Barnes–Hut N-body over per-body shared objects."""

    name = "NBody"

    def __init__(self, bodies: int = 256, steps: int = 4, seed: int = 13):
        if bodies < 2:
            raise ValueError(f"need >= 2 bodies, got {bodies}")
        if steps < 1:
            raise ValueError(f"steps must be >= 1, got {steps}")
        self.nbodies = bodies
        self.steps = steps
        self.seed = seed
        rng = np.random.default_rng(seed)
        self._x0 = rng.uniform(-1.0, 1.0, bodies)
        self._y0 = rng.uniform(-1.0, 1.0, bodies)
        self._vx0 = rng.uniform(-0.1, 0.1, bodies)
        self._vy0 = rng.uniform(-0.1, 0.1, bodies)
        self._m0 = rng.uniform(0.5, 1.5, bodies)
        self.body_objs: list = []
        self.barrier_handle = None
        self._nthreads = 0

    def setup(self, gos, nthreads: int) -> None:
        self._nthreads = nthreads
        self.body_objs = []
        for i in range(self.nbodies):
            # Creation node = default home: bodies are created by the
            # thread that will own them (the paper's creation-site rule).
            owner_node = None
            for tid in range(nthreads):
                if i in block_range(tid, self.nbodies, nthreads):
                    owner_node = self.placement(tid, gos.nnodes, nthreads)
                    break
            body = gos.alloc_fields(
                ("x", "y", "vx", "vy", "m"), home=owner_node, label=f"body{i}"
            )
            gos.write_global(
                body,
                np.array(
                    [self._x0[i], self._y0[i], self._vx0[i], self._vy0[i],
                     self._m0[i]]
                ),
            )
            self.body_objs.append(body)
        self.barrier_handle = gos.alloc_barrier(parties=nthreads, home=0)

    def thread_body(self, ctx, tid: int) -> Generator[Any, Any, None]:
        mine = block_range(tid, self.nbodies, self._nthreads)
        n = self.nbodies
        for _ in range(self.steps):
            xs = np.empty(n)
            ys = np.empty(n)
            vxs = np.empty(n)
            vys = np.empty(n)
            ms = np.empty(n)
            # Batched snapshot of all bodies (object pushing, §5.1) —
            # one fault-in message per remote home instead of per body.
            yield from ctx.read_many(self.body_objs)
            for i in range(n):
                payload = yield from ctx.read(self.body_objs[i])
                xs[i], ys[i], vxs[i], vys[i], ms[i] = payload
            # Phase barrier: nobody may publish step t+1 state while a
            # peer is still snapshotting step t (keeps all threads' trees
            # bit-identical to the sequential oracle's).
            yield from ctx.barrier(self.barrier_handle)
            tree = BarnesHutTree(xs, ys, ms)
            updates = []
            for i in mine:
                ax, ay = tree.acceleration(i)
                nvx = vxs[i] + DT * ax
                nvy = vys[i] + DT * ay
                nx = xs[i] + DT * nvx
                ny = ys[i] + DT * nvy
                updates.append((i, nx, ny, nvx, nvy))
            yield from ctx.compute(
                tree.operations * (INSERT_OPS + INTERACT_OPS) / 2 * FLOP_US
            )
            for i, nx, ny, nvx, nvy in updates:
                payload = yield from ctx.write(self.body_objs[i])
                payload[0] = nx
                payload[1] = ny
                payload[2] = nvx
                payload[3] = nvy
            yield from ctx.barrier(self.barrier_handle)

    def finalize(self, gos) -> tuple[np.ndarray, np.ndarray]:
        xs = np.empty(self.nbodies)
        ys = np.empty(self.nbodies)
        for i, body in enumerate(self.body_objs):
            payload = gos.read_global(body)
            xs[i], ys[i] = payload[0], payload[1]
        return xs, ys

    def verify(self, output: Any) -> None:
        xs, ys = output
        ex, ey = nbody_oracle(
            self._x0, self._y0, self._vx0, self._vy0, self._m0, self.steps
        )
        if not (np.allclose(xs, ex, rtol=1e-9) and np.allclose(ys, ey, rtol=1e-9)):
            raise VerificationError(
                f"NBody({self.nbodies}, {self.steps} steps) diverged from "
                "the sequential Barnes-Hut oracle"
            )
