"""LU: dense LU factorisation without pivoting (beyond-paper application).

The paper's future work calls for "more real, complicated DSM
applications"; LU is the classic SPLASH-2-style kernel with a sharing
pattern the four paper apps lack: at elimination step ``k`` every thread
reads pivot row ``k`` and updates its own rows *below* ``k`` — so the
active set shrinks as the factorisation proceeds, thread loads become
uneven, and each row's single-writer phase *ends* partway through the
run (once row ``i`` becomes a pivot it is read-shared and never written
again).  Home migration must therefore be profitable early and harmless
late — a good stress of the adaptive threshold's feedback.

Rows are row objects with round-robin initial homes (as in ASP/SOR);
the matrix is seeded diagonally dominant so elimination without pivoting
is numerically safe and bit-deterministic.
"""

from __future__ import annotations

from typing import Any, Generator

import numpy as np

from repro.apps.base import DsmApplication, FLOP_US, VerificationError
from repro.gos.distribution import block_owner, round_robin_homes


def dominant_matrix(n: int, seed: int) -> np.ndarray:
    """Random matrix with a dominant diagonal (no pivoting needed)."""
    rng = np.random.default_rng(seed)
    matrix = rng.uniform(-1.0, 1.0, size=(n, n))
    matrix[np.diag_indices(n)] = n + rng.uniform(1.0, 2.0, size=n)
    return matrix


def lu_oracle(matrix: np.ndarray) -> np.ndarray:
    """Sequential in-place LU (Doolittle, no pivoting): returns the
    combined LU matrix (L below the diagonal, U on and above)."""
    lu = matrix.copy()
    n = lu.shape[0]
    for k in range(n - 1):
        pivot = lu[k]
        for i in range(k + 1, n):
            factor = lu[i, k] / pivot[k]
            lu[i, k] = factor
            lu[i, k + 1:] -= factor * pivot[k + 1:]
    return lu


class Lu(DsmApplication):
    """Parallel row-blocked LU factorisation on the DSM."""

    name = "LU"

    def __init__(self, size: int = 96, seed: int = 23):
        if size < 2:
            raise ValueError(f"matrix must be at least 2x2, got {size}")
        self.size = size
        self.seed = seed
        self._initial = dominant_matrix(size, seed)
        self.rows: list = []
        self.barrier_handle = None
        self._nthreads = 0

    def setup(self, gos, nthreads: int) -> None:
        self._nthreads = nthreads
        self.rows = []
        for i, home in enumerate(round_robin_homes(self.size, gos.nnodes)):
            row = gos.alloc_array(self.size, home=home, label=f"lu-row{i}")
            gos.write_global(row, self._initial[i])
            self.rows.append(row)
        self.barrier_handle = gos.alloc_barrier(parties=nthreads, home=0)

    def thread_body(self, ctx, tid: int) -> Generator[Any, Any, None]:
        n = self.size
        mine = [
            i
            for i in range(n)
            if block_owner(i, n, self._nthreads) == tid
        ]
        for k in range(n - 1):
            pivot = yield from ctx.read(self.rows[k])
            active = [i for i in mine if i > k]
            for i in active:
                row = yield from ctx.write(self.rows[i])
                factor = row[k] / pivot[k]
                row[k] = factor
                row[k + 1:] -= factor * pivot[k + 1:]
            # ~2 ops per updated element of the trailing submatrix
            yield from ctx.compute(2 * len(active) * (n - k) * FLOP_US)
            yield from ctx.barrier(self.barrier_handle)

    def finalize(self, gos) -> np.ndarray:
        return np.vstack([gos.read_global(row) for row in self.rows])

    def verify(self, output: Any) -> None:
        expected = lu_oracle(self._initial)
        if not np.allclose(output, expected, rtol=1e-12, atol=1e-12):
            bad = int(np.count_nonzero(~np.isclose(output, expected)))
            raise VerificationError(
                f"LU({self.size}) differs from the sequential "
                f"elimination in {bad} entries"
            )
        # structural check: L*U reconstructs the input
        lower = np.tril(output, k=-1) + np.eye(self.size)
        upper = np.triu(output)
        if not np.allclose(lower @ upper, self._initial, atol=1e-8):
            raise VerificationError(
                f"LU({self.size}): L*U does not reconstruct the input"
            )
