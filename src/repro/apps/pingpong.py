"""Migratory-data workload: a data buffer handed around a ring of threads.

The classic DSM access pattern the synthetic counter does *not* cover:
each thread in turn *overwrites* part of a shared buffer (write-first —
no read precedes the write) and passes the turn on, so the buffer is
"written by processes sequentially" — exactly the pathology the paper
cites for JUMP's migrating-home protocol (§2).

* With ``burst = 1`` (one synchronized update per tenure) the pattern is
  purely migratory: no lasting single writer exists.  JUMP drags the
  home around the ring on every write fault and pays redirection chains;
  the adaptive threshold learns that migrations never earn exclusive
  home writes and pins the home down.
* With a large ``burst`` each tenure is a short single-writer run:
  migration starts paying again, and AT follows it.

The turn token itself lives in a separate small object so the buffer is
only ever touched with write intent.
"""

from __future__ import annotations

from typing import Any, Generator

import numpy as np

from repro.apps.base import DsmApplication, VerificationError


class TokenRing(DsmApplication):
    """A buffer overwritten in turns around a ring of threads."""

    name = "TokenRing"

    def __init__(
        self,
        rounds: int = 16,
        burst: int = 1,
        buffer_len: int = 64,
        compute_us: float = 20.0,
    ):
        if rounds < 1:
            raise ValueError(f"rounds must be >= 1, got {rounds}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        if buffer_len < 1:
            raise ValueError(f"buffer_len must be >= 1, got {buffer_len}")
        self.rounds = rounds
        self.burst = burst
        self.buffer_len = buffer_len
        self.compute_us = compute_us
        self.buffer = None
        self.turn_obj = None
        self.lock = None
        self._nthreads = 1

    def setup(self, gos, nthreads: int) -> None:
        self._nthreads = nthreads
        self.buffer = gos.alloc_array(
            self.buffer_len, home=0, label="ring-buffer"
        )
        self.turn_obj = gos.alloc_fields(("turn",), home=0, label="ring-turn")
        self.lock = gos.alloc_lock(home=0)

    def thread_body(self, ctx, tid: int) -> Generator[Any, Any, None]:
        total_turns = self.rounds * self._nthreads
        while True:
            yield from ctx.acquire(self.lock)
            token = yield from ctx.read(self.turn_obj)
            turn = int(token[0])
            if turn >= total_turns:
                yield from ctx.release(self.lock)
                break
            if turn % self._nthreads != tid:
                yield from ctx.release(self.lock)
                yield from ctx.compute(self.compute_us)
                continue
            # our tenure: `burst` synchronized write-first updates
            for i in range(self.burst):
                payload = yield from ctx.write(self.buffer)
                payload[(turn + i) % self.buffer_len] = float(tid + 1)
                if i < self.burst - 1:
                    yield from ctx.release(self.lock)
                    yield from ctx.acquire(self.lock)
            token = yield from ctx.write(self.turn_obj)
            token[0] = turn + 1
            yield from ctx.release(self.lock)
            yield from ctx.compute(self.compute_us)

    def finalize(self, gos) -> tuple[int, np.ndarray]:
        return (
            int(gos.read_global(self.turn_obj)[0]),
            gos.read_global(self.buffer),
        )

    def verify(self, output: Any) -> None:
        turn, buffer = output
        total_turns = self.rounds * self._nthreads
        if turn != total_turns:
            raise VerificationError(
                f"token finished at {turn}, expected {total_turns}"
            )
        # reconstruct the final buffer: slot s was last written at the
        # largest (turn + i) hitting it; replay the deterministic schedule
        expected = np.zeros(self.buffer_len)
        for t in range(total_turns):
            writer = t % self._nthreads
            for i in range(self.burst):
                expected[(t + i) % self.buffer_len] = float(writer + 1)
        if not np.array_equal(buffer, expected):
            bad = int(np.count_nonzero(buffer != expected))
            raise VerificationError(
                f"ring buffer differs from the schedule replay in {bad} slots"
            )
