"""Setup shim for environments without the `wheel` package.

The offline toolchain here (pip 23.2 + setuptools 65.5, no `wheel`)
cannot build PEP 660 editable wheels, so `pip install -e .` needs the
legacy setup.py code path; all real metadata lives in pyproject.toml.

The compiled kernel extension is declared ``optional``: hosts without a
C toolchain (or numpy at build time) still install fine and run on the
pure-Python backend — ``repro._kernel`` also builds the extension at
first use, so ``build_ext`` here is a convenience, not a requirement.
"""

from setuptools import setup

try:
    import numpy
    from setuptools import Extension

    ext_modules = [
        Extension(
            "repro._kernel._kernelc",
            sources=["src/repro/_kernel/_kernelc.c"],
            include_dirs=[numpy.get_include()],
            extra_compile_args=["-O2", "-fno-strict-aliasing"],
            optional=True,
        )
    ]
except ImportError:
    ext_modules = []

setup(ext_modules=ext_modules)
