"""Setup shim for environments without the `wheel` package.

The offline toolchain here (pip 23.2 + setuptools 65.5, no `wheel`)
cannot build PEP 660 editable wheels, so `pip install -e .` needs the
legacy setup.py code path; all real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
