#!/usr/bin/env python
"""Beyond the paper: two access patterns the evaluation did not cover.

1. **LU factorisation** — each matrix row has a single-writer phase that
   *ends* when the row becomes a pivot (read-shared forever after).  The
   adaptive protocol must migrate early and then leave pivots alone.
2. **TokenRing** — migratory data: a buffer overwritten by threads in
   sequence, §2's worst case for JUMP's migrating-home protocol.  With a
   tenure burst of 1 there is nothing to win by migrating; with a burst
   of 8 short single-writer runs reappear.

Run:  python examples/beyond_paper.py
"""

from repro.apps import Lu, TokenRing
from repro.bench.runner import run_once


def show(app_factory, policies, nodes, note):
    sample = app_factory()
    print(f"{sample.name}: {note}")
    for policy in policies:
        app = app_factory()
        result = run_once(app, policy=policy, nodes=nodes)
        print(
            f"  {policy:4s} time={result.execution_time_s:7.3f}s  "
            f"msgs={result.stats.total_messages():6d}  "
            f"migrations={result.migrations:4d}  "
            f"redir={result.stats.events.get('redir', 0):4d}"
        )
    print()


def main() -> None:
    show(
        lambda: Lu(size=96),
        ("NM", "FT2", "AT"),
        nodes=8,
        note="shrinking single-writer phases (row -> pivot -> read-only)",
    )
    show(
        lambda: TokenRing(rounds=16, burst=1),
        ("NM", "AT", "JUMP"),
        nodes=5,
        note="pure migratory data (burst=1): migration cannot pay",
    )
    show(
        lambda: TokenRing(rounds=16, burst=8),
        ("NM", "FT1", "AT"),
        nodes=5,
        note="bursty tenures (burst=8): short single-writer runs return",
    )
    print("LU: AT migrates each row at most once and wins ~3x over NoHM.")
    print("TokenRing burst=1: AT pins the home (JUMP pays the §2")
    print("pathology); burst=8: AT re-enables migration with half the")
    print("churn of the eager fixed threshold.")


if __name__ == "__main__":
    main()
