#!/usr/bin/env python
"""Why home-based? — the paper's §1 motivation, measured.

Runs the synthetic shared-counter benchmark on three protocol stacks:

* the home-based DSM without migration (NoHM),
* the home-based DSM with the paper's adaptive migration (AT),
* a homeless TreadMarks-style LRC baseline (diffs retained at writers,
  fetched on demand, with a barrier-triggered global GC),

and prints the §1 cost axes: message count, bytes moved, per-writer
fetch round trips, and retained diff memory.

Run:  python examples/homeless_vs_homebased.py
"""

from repro import AdaptiveThreshold, DistributedJVM, FAST_ETHERNET, NoMigration
from repro.apps import SingleWriterBenchmark, Sor
from repro.gos.homeless import HomelessObjectSpace  # noqa: F401 (docs pointer)


def run(label, **jvm_kwargs):
    app = SingleWriterBenchmark(total_updates=512, repetition=4)
    jvm = DistributedJVM(nodes=9, comm_model=FAST_ETHERNET, **jvm_kwargs)
    result = jvm.run(app)
    app.verify(result.output)
    events = result.stats.events
    print(
        f"{label:18s} time={result.execution_time_s:7.3f}s  "
        f"msgs={result.stats.total_messages():5d}  "
        f"bytes={result.stats.total_bytes() / 1e3:8.1f}KB  "
        f"fetch_rtts={events.get('homeless_fetch', 0):4d}  "
        f"retained_diffs={events.get('homeless_diff_bytes', 0):6d}B"
    )
    return result


def main() -> None:
    print("Synthetic shared counter, 8 working threads, r=4:\n")
    run("home-based NoHM", policy=NoMigration())
    run("home-based AT", policy=AdaptiveThreshold())
    run("homeless (TM)", protocol="homeless")
    print()
    print("The homeless protocol never ships diffs eagerly, so it moves")
    print("fewer messages here — but it pays one fetch round trip per")
    print("lagging writer at every fault, gossips ever-growing notice")
    print("maps, and retains every diff at its writer until a global GC")
    print("(the memory cost the paper cites).  The home-based protocol")
    print("keeps zero diff history, and with AT the single-writer counter")
    print("migrates to its writers and most traffic disappears entirely.")


if __name__ == "__main__":
    main()
