#!/usr/bin/env python
"""Anatomy of one home migration, step by step.

Drives the DSM by hand (no application harness): allocates one shared
object homed on node 0, has node 2 update it repeatedly, and narrates the
protocol events — the fault-in, the diff propagation, the consecutive-
writes counter, the migration decision, and the forwarding-pointer
redirection another reader then pays.  Also prints the home access
coefficient alpha and the live adaptive threshold after each step.

Run:  python examples/protocol_anatomy.py
"""

from repro import AdaptiveThreshold, FAST_ETHERNET
from repro.core.coefficient import home_access_coefficient
from repro.gos.space import GlobalObjectSpace
from repro.gos.thread import ThreadContext


def snapshot(gos, obj):
    home = gos.current_home(obj)
    state = gos.engines[home].homes[obj.oid].state
    alpha = gos.engines[home].alpha(obj.oid, state)
    threshold = gos.policy.current_threshold(state, alpha)
    return (
        f"home=node{home}  C={state.consecutive_writes} "
        f"(writer={state.consecutive_writer})  E={state.exclusive_home_writes} "
        f"R={state.redirections}  alpha={alpha:.2f}  T={threshold:.2f}"
    )


def main() -> None:
    gos = GlobalObjectSpace(
        nnodes=4, comm_model=FAST_ETHERNET, policy=AdaptiveThreshold()
    )
    obj = gos.alloc_array(256, home=0, label="demo")
    lock = gos.alloc_lock(home=0)
    print(
        "alpha for a fresh 2064-byte object on Fast Ethernet:",
        f"{home_access_coefficient(obj.size_bytes, obj.size_bytes, FAST_ETHERNET.half_peak_bytes):.2f}",
    )
    print(f"allocated {obj!r}, initial {snapshot(gos, obj)}\n")

    log = []

    def writer():
        ctx = ThreadContext(gos, tid=0, node=2)
        for turn in range(3):
            yield from ctx.acquire(lock)
            payload = yield from ctx.write(obj)
            payload[turn] = float(turn + 1)
            yield from ctx.release(lock)
            log.append((f"after update {turn + 1} from node 2", None))

    proc = gos.sim.spawn(writer(), name="writer")
    gos.sim.run()
    assert proc.finished.exception is None
    for label, _ in log:
        pass
    print("node 2 performed 3 synchronized updates:")
    print("  ", snapshot(gos, obj))
    print("   events:", {
        k: v for k, v in gos.stats.events.items()
        if k in ("obj", "mig", "diff", "redir", "migration")
    })
    print()

    def reader():
        ctx = ThreadContext(gos, tid=1, node=3)
        payload = yield from ctx.read(obj)
        assert payload[0] == 1.0

    gos.sim.spawn(reader(), name="reader")
    gos.sim.run()
    print("node 3 then read the object through the stale initial home:")
    print("  ", snapshot(gos, obj))
    print("   events:", {
        k: v for k, v in gos.stats.events.items()
        if k in ("obj", "mig", "diff", "redir", "migration")
    })
    print()
    print("The single redirection (node 0's forwarding pointer) was")
    print("charged to the object's negative feedback R — future migration")
    print("decisions for this object just got a little more conservative.")


if __name__ == "__main__":
    main()
