#!/usr/bin/env python
"""Authoring a custom home-migration policy.

The policy interface (:class:`repro.core.policies.MigrationPolicy`) is a
public extension point: a policy sees the per-object access monitor state
and decides, per object request at the home, whether the home should move
to the requester.

This example implements a *hysteresis* policy — migrate after K
consecutive remote writes, but refuse to migrate the same object again
within a cooldown number of requests — and races it against the paper's
protocols on the synthetic benchmark.

Run:  python examples/custom_policy.py
"""

from repro import DistributedJVM, FAST_ETHERNET
from repro.apps import SingleWriterBenchmark
from repro.bench.runner import make_policy
from repro.core.policies import MigrationPolicy
from repro.core.state import ObjectAccessState


class HysteresisPolicy(MigrationPolicy):
    """Fixed threshold + per-object cooldown between migrations."""

    name = "HYST"

    def __init__(self, threshold: int = 1, cooldown: int = 16):
        self.threshold = threshold
        self.cooldown = cooldown
        # per-object remote-read countdown since the last migration
        self._cooldowns: dict[int, int] = {}

    def should_migrate(
        self,
        state: ObjectAccessState,
        requester: int,
        alpha: float,
        for_write: bool,
    ) -> bool:
        remaining = self._cooldowns.get(state.oid, 0)
        if remaining > 0:
            self._cooldowns[state.oid] = remaining - 1
            return False
        return (
            state.consecutive_writer == requester
            and state.consecutive_writes >= self.threshold
        )

    def on_migrated(self, state: ObjectAccessState, alpha: float) -> None:
        self._cooldowns[state.oid] = self.cooldown
        super().on_migrated(state, alpha)


def run(policy, repetition):
    app = SingleWriterBenchmark(total_updates=512, repetition=repetition)
    jvm = DistributedJVM(nodes=9, comm_model=FAST_ETHERNET, policy=policy)
    result = jvm.run(app)
    app.verify(result.output)
    return result


def main() -> None:
    print(f"{'r':>3} {'policy':>6} {'time':>9} {'migrations':>11} {'redir':>7}")
    for repetition in (2, 16):
        for factory in (
            lambda: make_policy("FT1"),
            lambda: make_policy("AT"),
            lambda: HysteresisPolicy(threshold=1, cooldown=16),
        ):
            policy = factory()
            result = run(policy, repetition)
            print(
                f"{repetition:>3} {policy.name:>6} "
                f"{result.execution_time_s:8.3f}s "
                f"{result.migrations:>11} "
                f"{result.stats.events.get('redir', 0):>7}"
            )
    print()
    print("The cooldown tames FT1's redirection storm at r=2 but, unlike")
    print("AT, it is a fixed compromise: at r=16 the cooldown also delays")
    print("helpful migrations, while AT's feedback adapts per object.")


if __name__ == "__main__":
    main()
