#!/usr/bin/env python
"""Tour of the adaptive threshold on the paper's synthetic benchmark.

Reproduces Figure 5 at reduced scale: for each repetition ``r`` of the
single-writer pattern, runs the synthetic shared-counter benchmark under
NM / FT1 / FT2 / AT and prints the normalized execution times and the
obj/mig/diff/redir message breakdown — showing AT's *sensitivity* to the
lasting pattern (matches FT1 at large r) and *robustness* against the
transient one (suppresses FT1's redirection storm at small r).

Run:  python examples/adaptive_threshold_tour.py
"""

from repro.bench.figure5 import render_figure5, run_figure5


def main() -> None:
    data = run_figure5(total_updates=512)
    print(render_figure5(data))
    print()
    at_small = data["breakdowns"][2]["AT"]["redir"]
    ft1_small = data["breakdowns"][2]["FT1"]["redir"]
    print(
        f"At r=2 (transient pattern) AT paid {at_small} redirections where "
        f"FT1 paid {ft1_small}: the negative feedback R_i raised the "
        "per-object threshold and shut migration down."
    )
    at_large = data["times"][16]["AT"]
    nm_large = data["times"][16]["NM"]
    print(
        f"At r=16 (lasting pattern) AT runs in {at_large:.3f}s vs NM's "
        f"{nm_large:.3f}s: the positive feedback E_i (exclusive home "
        "writes) kept the threshold at its floor, migrating eagerly."
    )


if __name__ == "__main__":
    main()
