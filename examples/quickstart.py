#!/usr/bin/env python
"""Quickstart: run one application with and without home migration.

Builds a simulated 8-node Fast-Ethernet cluster, runs red-black SOR on
the home-based DSM with migration disabled (the paper's NoHM) and with
the adaptive-threshold protocol (AT), verifies both results against the
sequential oracle, and prints the comparison.

Run:  python examples/quickstart.py
"""

from repro import AdaptiveThreshold, DistributedJVM, FAST_ETHERNET, NoMigration
from repro.apps import Sor


def main() -> None:
    print("Simulated cluster: 8 nodes, Fast Ethernet "
          f"(t0={FAST_ETHERNET.startup_us} us, "
          f"r_inf={FAST_ETHERNET.bandwidth_mb_s} MB/s)\n")

    results = {}
    for label, policy in (("NoHM", NoMigration()), ("HM/AT", AdaptiveThreshold())):
        app = Sor(size=128, iterations=10)
        jvm = DistributedJVM(nodes=8, comm_model=FAST_ETHERNET, policy=policy)
        result = jvm.run(app)
        app.verify(result.output)  # raises if the DSM diverged from the oracle
        results[label] = result
        print(
            f"{label:6s} time={result.execution_time_s:7.3f}s  "
            f"messages={result.stats.total_messages():6d}  "
            f"traffic={result.stats.total_bytes() / 1e6:6.2f} MB  "
            f"migrations={result.migrations}"
        )

    speedup = (
        results["NoHM"].execution_time_s / results["HM/AT"].execution_time_s
    )
    print(f"\nAdaptive home migration made SOR {speedup:.2f}x faster:")
    print("each matrix row is written by exactly one thread (a lasting")
    print("single-writer pattern), so its home migrates to the writer and")
    print("the per-iteration fault-in/diff round trips disappear.")


if __name__ == "__main__":
    main()
