#!/usr/bin/env python
"""Watching the adaptive threshold breathe.

Attaches a trace recorder to the synthetic benchmark and prints, for the
shared counter object, every migration (with the threshold frozen at
that moment) and the live-threshold series the home evaluated at each
migration decision — first under a transient pattern (r=2, the
threshold climbs and chokes off migration) and then under a lasting one
(r=16, the threshold stays pinned at the floor).

Run:  python examples/trace_timeline.py
"""

from repro import AdaptiveThreshold, DistributedJVM, FAST_ETHERNET
from repro.apps import SingleWriterBenchmark
from repro.trace import TraceRecorder


def run_traced(repetition):
    tracer = TraceRecorder()
    app = SingleWriterBenchmark(total_updates=256, repetition=repetition)
    jvm = DistributedJVM(
        nodes=9,
        comm_model=FAST_ETHERNET,
        policy=AdaptiveThreshold(),
        tracer=tracer,
    )
    result = jvm.run(app)
    app.verify(result.output)
    return tracer, app, result


def show(repetition):
    tracer, app, result = run_traced(repetition)
    oid = app.counter.oid
    print(f"--- repetition r={repetition}  "
          f"(migrations={result.migrations}, "
          f"redirections={result.stats.events.get('redir', 0)})")
    print("home path:", " -> ".join(
        f"n{h}" for h in tracer.home_path(oid, initial_home=0)[:12]),
        "..." if len(tracer.migrations(oid)) > 11 else "")
    series = tracer.threshold_series(oid)
    shown = series[:: max(1, len(series) // 12)]
    print("live threshold at migration decisions:")
    for time_us, threshold in shown:
        bar = "#" * min(60, int(round(threshold * 4)))
        print(f"  t={time_us / 1e3:8.1f}ms  T={threshold:6.2f} |{bar}")
    print()


def main() -> None:
    show(repetition=2)
    show(repetition=16)
    print("r=2: every early migration bought only redirections (R up,")
    print("E flat), so T climbed until migration stopped.  r=16: each")
    print("migration was followed by a run of exclusive home writes")
    print("(E up), holding T at its floor of 1 — eager relocation.")


if __name__ == "__main__":
    main()
