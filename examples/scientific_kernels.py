#!/usr/bin/env python
"""Scaling study of the four paper applications (Figure-2 style).

Runs ASP, SOR, NBody and TSP on 2..8 simulated processors with home
migration off (NoHM) and on (HM = adaptive threshold), verifying every
run against its sequential oracle, and prints per-application scaling
tables — the reproduction of the paper's Figure 2 at reduced problem
sizes.

Run:  python examples/scientific_kernels.py          (quick sizes)
      python examples/scientific_kernels.py --full   (paper sizes, slow)
"""

import sys

from repro.bench.figure2 import render_figure2, run_figure2


def main() -> None:
    mode = "full" if "--full" in sys.argv[1:] else "quick"
    data = run_figure2(mode=mode, processor_counts=(2, 4, 8))
    print(render_figure2(data))
    print()
    print("Reading the tables: the HM/NoHM row is the paper's headline —")
    print("well below 1.0x for ASP and SOR (row objects start round-robin")
    print("homed, migrate to their single writers), and ~1.0x for NBody")
    print("and TSP (no exploitable single-writer pattern, and the adaptive")
    print("protocol is light enough to cost nothing).")


if __name__ == "__main__":
    main()
